// End-to-end tests of the topology discovery protocol (Section 4.1): a controller
// host probes the fabric through real simulated dumb switches and must reconstruct
// the exact ground-truth topology.
#include "src/ctrl/discovery.h"

#include <gtest/gtest.h>

#include "src/analysis/invariants.h"
#include "src/topo/generators.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

// Fast probing for unit tests: small CPU costs, short timeouts.
DiscoveryConfig FastDiscovery(uint8_t max_ports) {
  DiscoveryConfig config;
  config.max_ports = max_ports;
  config.pm_send_cost = Us(1);
  config.pm_recv_cost = Us(1);
  config.probe_timeout = Ms(20);
  return config;
}

// Checks that `db` matches the ground truth `topo` exactly: same switches, same
// links (including port numbers), same host locations.
void ExpectDiscoveredExactly(const TopoDb& db, const Topology& topo) {
  // Discovery is quiescent here, so the strict (freshness-checking) audit applies.
  auto audit = AuditTopoDbAgainstTruth(db, topo);
  EXPECT_TRUE(audit.ok()) << audit.error().message();

  EXPECT_EQ(db.switch_count(), topo.switch_count());
  EXPECT_EQ(db.host_count(), topo.host_count());

  size_t truth_links = topo.InterSwitchLinkCount();
  size_t db_links = 0;
  for (LinkIndex li = 0; li < db.mirror().link_count(); ++li) {
    if (!db.mirror().link_at(li).detached) {
      ++db_links;
    }
  }
  EXPECT_EQ(db_links, truth_links);

  for (LinkIndex li = 0; li < topo.link_count(); ++li) {
    const Link& l = topo.link_at(li);
    if (!l.a.node.is_switch() || !l.b.node.is_switch()) {
      continue;
    }
    WireLink wl{topo.switch_at(l.a.node.index).uid, l.a.port,
                topo.switch_at(l.b.node.index).uid, l.b.port};
    WireLink reversed{wl.uid_b, wl.port_b, wl.uid_a, wl.port_a};
    EXPECT_TRUE(db.HasLink(wl) || db.HasLink(reversed))
        << "missing link " << l.a.ToString() << " <-> " << l.b.ToString();
  }

  for (uint32_t h = 0; h < topo.host_count(); ++h) {
    auto loc = db.LocateHost(topo.host_at(h).mac);
    ASSERT_TRUE(loc.ok()) << "host H" << h << " undiscovered";
    auto truth = topo.HostUplink(h);
    ASSERT_TRUE(truth.ok());
    EXPECT_EQ(loc.value().switch_uid, topo.switch_at(truth.value().node.index).uid);
    EXPECT_EQ(loc.value().port, truth.value().port);
  }
}

TEST(DiscoveryTest, SingleSwitchTwoHosts) {
  Topology topo;
  uint32_t sw = topo.AddSwitch(8);
  uint32_t h0 = topo.AddHost();
  uint32_t h1 = topo.AddHost();
  ASSERT_TRUE(topo.AttachHost(h0, sw, 3).ok());
  ASSERT_TRUE(topo.AttachHost(h1, sw, 7).ok());

  TestFabric fabric(std::move(topo));
  DiscoveryService discovery(&fabric.agent(0), FastDiscovery(8));
  bool done = false;
  discovery.Start([&] { done = true; });
  fabric.Run();

  ASSERT_TRUE(done);
  EXPECT_EQ(discovery.attach_port(), 3);
  ExpectDiscoveredExactly(discovery.db(), fabric.topo());
}

TEST(DiscoveryTest, PaperExampleTopology) {
  // Figure 1 of the paper: 5 switches, ambiguous return paths between S1/S2.
  Topology topo;
  uint32_t s1 = topo.AddSwitch(8);
  uint32_t s2 = topo.AddSwitch(8);
  uint32_t s3 = topo.AddSwitch(8);
  uint32_t s4 = topo.AddSwitch(8);
  uint32_t s5 = topo.AddSwitch(8);
  ASSERT_TRUE(topo.ConnectSwitches(s3, 1, s1, 1).ok());
  ASSERT_TRUE(topo.ConnectSwitches(s3, 2, s2, 1).ok());  // S1,S2 same return path
  ASSERT_TRUE(topo.ConnectSwitches(s1, 2, s4, 1).ok());
  ASSERT_TRUE(topo.ConnectSwitches(s2, 2, s4, 2).ok());
  ASSERT_TRUE(topo.ConnectSwitches(s2, 3, s5, 1).ok());
  ASSERT_TRUE(topo.ConnectSwitches(s4, 3, s5, 2).ok());

  uint32_t c3 = topo.AddHost();  // controller on S3 port 5 (not port 9: 8-port switch)
  ASSERT_TRUE(topo.AttachHost(c3, s3, 5).ok());
  uint32_t h1 = topo.AddHost();
  ASSERT_TRUE(topo.AttachHost(h1, s1, 5).ok());
  uint32_t h4 = topo.AddHost();
  ASSERT_TRUE(topo.AttachHost(h4, s4, 5).ok());
  uint32_t h5 = topo.AddHost();
  ASSERT_TRUE(topo.AttachHost(h5, s5, 5).ok());

  TestFabric fabric(std::move(topo));
  DiscoveryService discovery(&fabric.agent(0), FastDiscovery(8));
  bool done = false;
  discovery.Start([&] { done = true; });
  fabric.Run();

  ASSERT_TRUE(done);
  ExpectDiscoveredExactly(discovery.db(), fabric.topo());
  // The ambiguity machinery must have rejected at least one false candidate.
  EXPECT_GT(discovery.stats().rejected_ambiguous, 0u);
}

TEST(DiscoveryTest, PaperTestbedLeafSpine) {
  auto testbed = MakePaperTestbed();
  ASSERT_TRUE(testbed.ok());
  TestFabric fabric(std::move(testbed.value().topo));
  // Host 25 is one of the two extra hosts on leaf 0: use it as controller.
  DiscoveryService discovery(&fabric.agent(25), FastDiscovery(16));
  bool done = false;
  discovery.Start([&] { done = true; });
  fabric.Run();

  ASSERT_TRUE(done);
  EXPECT_EQ(discovery.db().switch_count(), 7u);
  EXPECT_EQ(discovery.db().host_count(), 27u);
  ExpectDiscoveredExactly(discovery.db(), fabric.topo());
}

TEST(DiscoveryTest, CubeTopology) {
  CubeConfig config;
  config.dims = {3, 3, 3};
  config.hosts_per_switch = 1;
  config.switch_ports = 8;
  auto cube = MakeCube(config);
  ASSERT_TRUE(cube.ok());
  TestFabric fabric(std::move(cube.value().topo));
  DiscoveryService discovery(&fabric.agent(13), FastDiscovery(8));  // center-ish
  bool done = false;
  discovery.Start([&] { done = true; });
  fabric.Run();

  ASSERT_TRUE(done);
  ExpectDiscoveredExactly(discovery.db(), fabric.topo());
}

TEST(DiscoveryTest, FatTreeK4) {
  FatTreeConfig config;
  config.k = 4;
  auto ft = MakeFatTree(config);
  ASSERT_TRUE(ft.ok());
  TestFabric fabric(std::move(ft.value().topo));
  DiscoveryService discovery(&fabric.agent(0), FastDiscovery(4));
  bool done = false;
  discovery.Start([&] { done = true; });
  fabric.Run();

  ASSERT_TRUE(done);
  EXPECT_EQ(discovery.db().switch_count(), 20u);
  EXPECT_EQ(discovery.db().host_count(), 16u);
  ExpectDiscoveredExactly(discovery.db(), fabric.topo());
}

TEST(DiscoveryTest, ProbeComplexityIsNPSquared) {
  // The PM count must scale as N * P^2 (Section 4.1's analysis, Figure 8b).
  auto run = [](uint8_t ports) {
    CubeConfig config;
    config.dims = {2, 2, 2};
    config.switch_ports = ports;
    auto cube = MakeCube(config);
    TestFabric fabric(std::move(cube.value().topo));
    DiscoveryService discovery(&fabric.agent(0), FastDiscovery(ports));
    discovery.Start(nullptr);
    fabric.Run();
    return discovery.stats().probes_sent;
  };
  uint64_t p8 = run(8);
  uint64_t p16 = run(16);
  // Quadrupling expected when doubling P (plus lower-order host-probe terms).
  double ratio = static_cast<double>(p16) / static_cast<double>(p8);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(DiscoveryTest, ReprobeFindsRestoredLink) {
  auto testbed = MakePaperTestbed();
  ASSERT_TRUE(testbed.ok());
  uint32_t spine0 = testbed.value().spines[0];
  TestFabric fabric(std::move(testbed.value().topo));
  DiscoveryService discovery(&fabric.agent(25), FastDiscovery(16));
  discovery.Start(nullptr);
  fabric.Run();
  ASSERT_TRUE(discovery.complete());

  // Kill a leaf0-spine0 link, then restore it and ask discovery to re-probe.
  LinkIndex li = fabric.topo().LinkAtPort(spine0, 1);
  ASSERT_NE(li, kInvalidLink);
  fabric.topo().SetLinkUp(li, false);
  fabric.RunUntil(fabric.Now() + Sec(2));
  fabric.topo().SetLinkUp(li, true);
  fabric.RunUntil(fabric.Now() + Sec(2));

  uint64_t spine_uid = fabric.topo().switch_at(spine0).uid;
  bool reprobed = false;
  discovery.ReprobePort(spine_uid, 1, [&] { reprobed = true; });
  fabric.Run();
  EXPECT_TRUE(reprobed);
  auto link = discovery.db().LinkAt(spine_uid, 1);
  ASSERT_TRUE(link.ok());
}

}  // namespace
}  // namespace dumbnet
