// Tests for the baseline Ethernet fabric: MAC learning, loop suppression via STP,
// and reconvergence after failures (the machinery behind Figure 11b's baseline).
#include "src/baseline/ethernet_switch.h"

#include <gtest/gtest.h>

#include "src/topo/generators.h"

namespace dumbnet {
namespace {

struct EthFixture {
  explicit EthFixture(Topology t, EthernetSwitchConfig config = EthernetSwitchConfig())
      : topo(std::move(t)) {
    net = std::make_unique<Network>(&sim, &topo);
    for (uint32_t s = 0; s < topo.switch_count(); ++s) {
      switches.push_back(std::make_unique<EthernetSwitch>(net.get(), s, config));
    }
    for (uint32_t h = 0; h < topo.host_count(); ++h) {
      hosts.push_back(std::make_unique<EthernetHost>(net.get(), h));
    }
  }

  // Let STP converge from cold start.
  void Warm() { sim.RunUntil(sim.Now() + Sec(1)); }

  Topology topo;
  Simulator sim;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<EthernetSwitch>> switches;
  std::vector<std::unique_ptr<EthernetHost>> hosts;
};

// Triangle of switches (a loop!) with one host each.
Topology Triangle() {
  Topology t;
  for (int i = 0; i < 3; ++i) {
    t.AddSwitch(8);
  }
  t.ConnectSwitches(0, 1, 1, 1).value();
  t.ConnectSwitches(1, 2, 2, 1).value();
  t.ConnectSwitches(2, 2, 0, 2).value();
  for (uint32_t i = 0; i < 3; ++i) {
    uint32_t h = t.AddHost();
    t.AttachHost(h, i, 5).value();
  }
  return t;
}

TEST(EthernetSwitchTest, LearningUnicastAfterFlood) {
  EthFixture f(Triangle());
  f.Warm();
  int got = 0;
  f.hosts[2]->SetFrameHandler([&](const Packet&, const DataPayload&) { ++got; });

  // First frame floods; reply teaches the path; second frame is unicast.
  f.hosts[0]->SendFrame(f.hosts[2]->mac(), DataPayload{1, 0, 0, false, 100});
  f.sim.RunUntil(f.sim.Now() + Ms(50));
  EXPECT_EQ(got, 1);
  f.hosts[2]->SendFrame(f.hosts[0]->mac(), DataPayload{2, 0, 0, false, 100});
  f.sim.RunUntil(f.sim.Now() + Ms(50));
  uint64_t flooded_before = 0;
  for (auto& sw : f.switches) {
    flooded_before += sw->stats().flooded;
  }
  f.hosts[0]->SendFrame(f.hosts[2]->mac(), DataPayload{3, 0, 0, false, 100});
  f.sim.RunUntil(f.sim.Now() + Ms(50));
  EXPECT_EQ(got, 2);
  uint64_t flooded_after = 0;
  for (auto& sw : f.switches) {
    flooded_after += sw->stats().flooded;
  }
  EXPECT_EQ(flooded_after, flooded_before);  // unicast now, no new floods
}

TEST(EthernetSwitchTest, StpBlocksTheLoop) {
  EthFixture f(Triangle());
  f.Warm();
  // Exactly one of the three inter-switch link *sides* must be blocked: count
  // forwarding inter-switch ports; a 3-cycle with STP keeps 2 of 3 links.
  int blocked_sides = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    for (PortNum p = 1; p <= 2; ++p) {
      if (f.topo.LinkAtPort(s, p) == kInvalidLink) {
        continue;
      }
      if (f.switches[s]->port_state(p) != EthernetSwitch::PortState::kForwarding) {
        ++blocked_sides;
      }
    }
  }
  EXPECT_GE(blocked_sides, 1);
  // Exactly one root bridge.
  int roots = 0;
  for (auto& sw : f.switches) {
    roots += sw->IsRootBridge() ? 1 : 0;
  }
  EXPECT_EQ(roots, 1);
}

TEST(EthernetSwitchTest, BroadcastDoesNotStorm) {
  EthFixture f(Triangle());
  f.Warm();
  uint64_t delivered_before = f.net->stats().delivered;
  f.hosts[0]->SendFrame(kBroadcastMac, DataPayload{1, 0, 0, false, 100});
  f.sim.RunUntil(f.sim.Now() + Ms(200));
  // A storm would generate an unbounded packet count; with STP the broadcast
  // visits each segment a bounded number of times (plus background BPDUs).
  uint64_t data_frames = f.net->stats().delivered - delivered_before;
  EXPECT_LT(data_frames, 600u);  // BPDU background over 200 ms dominates
}

TEST(EthernetSwitchTest, ReconvergesAfterLinkFailure) {
  EthFixture f(Triangle());
  f.Warm();
  int got = 0;
  f.hosts[1]->SetFrameHandler([&](const Packet&, const DataPayload&) { ++got; });
  f.hosts[0]->SendFrame(f.hosts[1]->mac(), DataPayload{1, 0, 0, false, 100});
  f.sim.RunUntil(f.sim.Now() + Ms(100));
  ASSERT_EQ(got, 1);

  // Cut the direct S0-S1 link; STP must open the blocked path via S2.
  f.topo.SetLinkUp(f.topo.LinkAtPort(0, 1), false);
  f.sim.RunUntil(f.sim.Now() + Sec(2));

  f.hosts[0]->SendFrame(f.hosts[1]->mac(), DataPayload{2, 0, 0, false, 100});
  f.sim.RunUntil(f.sim.Now() + Ms(100));
  EXPECT_EQ(got, 2);
}

TEST(EthernetSwitchTest, TopologyChangeFlushesMacTables) {
  EthFixture f(Triangle());
  f.Warm();
  uint64_t flushes_before = 0;
  for (auto& sw : f.switches) {
    flushes_before += sw->stats().mac_flushes;
  }
  f.topo.SetLinkUp(f.topo.LinkAtPort(0, 1), false);
  f.sim.RunUntil(f.sim.Now() + Sec(1));
  uint64_t flushes_after = 0;
  for (auto& sw : f.switches) {
    flushes_after += sw->stats().mac_flushes;
  }
  EXPECT_GT(flushes_after, flushes_before);
}

TEST(EthernetSwitchTest, PlainLearningModeOnTree) {
  // STP off on a loop-free topology: still works.
  Topology t;
  t.AddSwitch(8);
  t.AddSwitch(8);
  t.ConnectSwitches(0, 1, 1, 1).value();
  uint32_t h0 = t.AddHost();
  uint32_t h1 = t.AddHost();
  t.AttachHost(h0, 0, 5).value();
  t.AttachHost(h1, 1, 5).value();
  EthernetSwitchConfig config;
  config.run_stp = false;
  EthFixture f(std::move(t), config);
  int got = 0;
  f.hosts[1]->SetFrameHandler([&](const Packet&, const DataPayload&) { ++got; });
  f.hosts[0]->SendFrame(f.hosts[1]->mac(), DataPayload{});
  f.sim.Run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace dumbnet
