// Randomized property tests: routing algorithms checked against brute force on
// small random graphs, and discovery checked for exactness on random irregular
// topologies (parameterized over seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/ctrl/discovery.h"
#include "src/routing/graph.h"
#include "src/routing/path_graph.h"
#include "src/routing/shortest_path.h"
#include "src/topo/generators.h"
#include "src/util/rng.h"
#include "tests/random_topo.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

using testing_topo::RandomTopology;

// All simple paths between two vertices (for brute-force k-SP comparison).
void AllPathsDfs(const SwitchGraph& g, uint32_t u, uint32_t dst, std::vector<bool>& visited,
                 SwitchPath& current, std::vector<SwitchPath>& out) {
  if (u == dst) {
    out.push_back(current);
    return;
  }
  visited[u] = true;
  for (const AdjEdge& e : g.Neighbors(u)) {
    if (!visited[e.to]) {
      current.push_back(e.to);
      AllPathsDfs(g, e.to, dst, visited, current, out);
      current.pop_back();
    }
  }
  visited[u] = false;
}

class RoutingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoutingPropertyTest, YenMatchesBruteForce) {
  Topology topo = RandomTopology(GetParam(), 7, 6);
  SwitchGraph g(topo);
  Rng pick(GetParam() ^ 0xABC);
  for (int trial = 0; trial < 4; ++trial) {
    uint32_t src = static_cast<uint32_t>(pick.UniformInt(topo.switch_count()));
    uint32_t dst = static_cast<uint32_t>(pick.UniformInt(topo.switch_count()));
    if (src == dst) {
      continue;
    }
    std::vector<SwitchPath> all;
    std::vector<bool> visited(topo.switch_count(), false);
    SwitchPath current{src};
    AllPathsDfs(g, src, dst, visited, current, all);
    ASSERT_FALSE(all.empty());
    std::vector<size_t> lengths;
    for (const SwitchPath& p : all) {
      lengths.push_back(p.size());
    }
    std::sort(lengths.begin(), lengths.end());

    uint32_t k = static_cast<uint32_t>(std::min<size_t>(all.size(), 5));
    auto yen = KShortestPaths(g, src, dst, k);
    ASSERT_TRUE(yen.ok());
    ASSERT_EQ(yen.value().size(), k) << "Yen found fewer paths than exist";
    for (uint32_t i = 0; i < k; ++i) {
      EXPECT_EQ(yen.value()[i].size(), lengths[i])
          << "seed=" << GetParam() << " src=" << src << " dst=" << dst << " i=" << i;
    }
  }
}

TEST_P(RoutingPropertyTest, ShortestPathMatchesBfsDistance) {
  Topology topo = RandomTopology(GetParam() * 31 + 7, 12, 10);
  SwitchGraph g(topo);
  auto dist = BfsDistances(g, 0);
  for (uint32_t v = 1; v < topo.switch_count(); ++v) {
    auto path = ShortestPath(g, 0, v);
    ASSERT_TRUE(path.ok());
    EXPECT_EQ(path.value().size(), dist[v] + 1);
  }
}

TEST_P(RoutingPropertyTest, PathGraphAlwaysRoutableWithinItself) {
  Topology topo = RandomTopology(GetParam() * 131 + 3, 15, 14);
  SwitchGraph g(topo);
  Rng pick(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    uint32_t src = static_cast<uint32_t>(pick.UniformInt(topo.switch_count()));
    uint32_t dst = static_cast<uint32_t>(pick.UniformInt(topo.switch_count()));
    if (src == dst) {
      continue;
    }
    PathGraphParams params;
    params.s = 2;
    params.epsilon = static_cast<uint32_t>(pick.UniformInt(3));
    auto pg = BuildPathGraph(topo, g, src, dst, params);
    ASSERT_TRUE(pg.ok());
    // The induced subgraph must route src -> dst at primary length.
    SwitchGraph sub(topo, pg.value().links);
    auto inner = ShortestPath(sub, src, dst);
    ASSERT_TRUE(inner.ok());
    EXPECT_EQ(inner.value().size(), pg.value().primary.size());
  }
}

TEST_P(RoutingPropertyTest, TagCompilationWalksRealLinks) {
  Topology topo = RandomTopology(GetParam() * 17 + 1, 10, 8);
  SwitchGraph g(topo);
  Rng pick(GetParam() ^ 0x7711);
  uint32_t src = static_cast<uint32_t>(pick.UniformInt(topo.switch_count()));
  uint32_t dst = static_cast<uint32_t>(pick.UniformInt(topo.switch_count()));
  if (src == dst) {
    dst = (dst + 1) % static_cast<uint32_t>(topo.switch_count());
  }
  auto path = ShortestPath(g, src, dst);
  ASSERT_TRUE(path.ok());
  auto tags = CompileSwitchTags(topo, path.value());
  ASSERT_TRUE(tags.ok());
  // Walking the tags through the real topology must retrace the path.
  uint32_t cur = src;
  for (size_t i = 0; i < tags.value().size(); ++i) {
    auto peer = topo.PeerOf(cur, tags.value()[i]);
    ASSERT_TRUE(peer.ok());
    ASSERT_TRUE(peer.value().node.is_switch());
    cur = peer.value().node.index;
    EXPECT_EQ(cur, path.value()[i + 1]);
  }
  EXPECT_EQ(cur, dst);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// --- Discovery on random irregular fabrics ------------------------------------------

class DiscoveryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiscoveryPropertyTest, ExactOnRandomJellyfish) {
  JellyfishConfig config;
  config.num_switches = 10;
  config.switch_ports = 10;
  config.network_degree = 4;
  config.hosts_per_switch = 1;
  config.seed = GetParam();
  auto jf = MakeJellyfish(config);
  ASSERT_TRUE(jf.ok());
  if (!jf.value().topo.IsConnected()) {
    GTEST_SKIP() << "random draw disconnected";
  }
  TestFabric fabric(std::move(jf.value().topo));
  DiscoveryConfig discovery_config;
  discovery_config.max_ports = 10;
  discovery_config.pm_send_cost = Us(1);
  discovery_config.pm_recv_cost = Us(1);
  discovery_config.probe_timeout = Ms(20);
  DiscoveryService discovery(&fabric.agent(0), discovery_config);
  discovery.Start(nullptr);
  fabric.Run();

  ASSERT_TRUE(discovery.complete());
  EXPECT_EQ(discovery.db().switch_count(), fabric.topo().switch_count());
  EXPECT_EQ(discovery.db().host_count(), fabric.topo().host_count());
  for (LinkIndex li = 0; li < fabric.topo().link_count(); ++li) {
    const Link& l = fabric.topo().link_at(li);
    if (!l.a.node.is_switch() || !l.b.node.is_switch()) {
      continue;
    }
    WireLink wl{fabric.topo().switch_at(l.a.node.index).uid, l.a.port,
                fabric.topo().switch_at(l.b.node.index).uid, l.b.port};
    WireLink rev{wl.uid_b, wl.port_b, wl.uid_a, wl.port_a};
    EXPECT_TRUE(discovery.db().HasLink(wl) || discovery.db().HasLink(rev))
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoveryPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace dumbnet
