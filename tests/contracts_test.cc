// Tests for the hot-path contract layer (src/analysis/contracts): region-stack
// bookkeeping, the operator-new interposer, reactor blocking detection, and
// lock-rank inversion tracking. Each enforcement test pairs with a lint-side
// fixture in lint_test.cc so the same violation shape is provably caught both
// statically and at runtime.
//
// Every test skips when contracts are compiled out (-DDUMBNET_CONTRACTS=OFF);
// the suite still links and passes in that configuration.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <mutex>
#include <string>
#include <vector>

#include "src/analysis/contracts.h"
#include "src/telemetry/telemetry.h"

namespace dumbnet {
namespace {

// Enables enforcement for one test and restores a pristine disabled state
// afterwards, so contract accounting never leaks into neighboring tests.
class ContractsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!contracts::kCompiledIn) {
      GTEST_SKIP() << "contracts compiled out (DUMBNET_CONTRACTS=OFF)";
    }
    contracts::SetViolationHook(nullptr);
    contracts::SetFailMode(contracts::FailMode::kCount);
    contracts::ResetCounters();
    contracts::SetEnabled(true);
  }
  void TearDown() override {
    contracts::SetEnabled(false);
    contracts::SetViolationHook(nullptr);
    contracts::SetFailMode(contracts::FailMode::kCount);
    contracts::ResetCounters();
  }
};

// ---------------------------------------------------------------------------------
// Region stack

TEST_F(ContractsTest, RegionStackNestsAndUnwinds) {
  EXPECT_EQ(contracts::HotDepth(), 0);
  EXPECT_EQ(contracts::CurrentHotScope(), nullptr);
  {
    DN_HOT_SCOPE("outer");
    EXPECT_EQ(contracts::HotDepth(), 1);
    EXPECT_STREQ(contracts::CurrentHotScope(), "outer");
    {
      DN_HOT_SCOPE("inner");
      EXPECT_EQ(contracts::HotDepth(), 2);
      EXPECT_STREQ(contracts::CurrentHotScope(), "inner");
    }
    EXPECT_EQ(contracts::HotDepth(), 1);
    EXPECT_STREQ(contracts::CurrentHotScope(), "outer");
  }
  EXPECT_EQ(contracts::HotDepth(), 0);
}

TEST_F(ContractsTest, ExemptAndReactorDepthsTrackTheirBlocks) {
  {
    DN_HOT_SCOPE("scope");
    EXPECT_EQ(contracts::ExemptDepth(), 0);
    {
      DN_HOT_EXEMPT("cold subpath under test");
      EXPECT_EQ(contracts::ExemptDepth(), 1);
      {
        DN_HOT_EXEMPT("nested cold subpath");
        EXPECT_EQ(contracts::ExemptDepth(), 2);
      }
      EXPECT_EQ(contracts::ExemptDepth(), 1);
    }
    EXPECT_EQ(contracts::ExemptDepth(), 0);
  }
  EXPECT_EQ(contracts::ReactorDepth(), 0);
  {
    DN_REACTOR_CONTEXT;
    EXPECT_EQ(contracts::ReactorDepth(), 1);
  }
  EXPECT_EQ(contracts::ReactorDepth(), 0);
}

TEST_F(ContractsTest, DisabledRuntimeOpensNoRegions) {
  contracts::SetEnabled(false);
  DN_HOT_SCOPE("ignored");
  DN_REACTOR_CONTEXT;
  EXPECT_EQ(contracts::HotDepth(), 0);
  EXPECT_EQ(contracts::ReactorDepth(), 0);
}

// ---------------------------------------------------------------------------------
// Hot-alloc interposer. The lint half of this fixture is
// LintRuleTest.HotAllocFires in lint_test.cc: the same push_back-in-hot-scope
// shape, caught lexically there and by the interposer here.

TEST_F(ContractsTest, AllocationInsideHotScopeIsCounted) {
  std::vector<int> v;
  v.reserve(1);  // ensure the growth below actually allocates
  std::vector<int> grow;
  {
    DN_HOT_SCOPE("test.hot_fixture");
    // dn-lint: allow(hot-alloc, this IS the runtime violation fixture)
    grow.push_back(1);
  }
  const contracts::CounterSnapshot after = contracts::Counters();
  EXPECT_GE(after.hot_allocs, 1u);
  EXPECT_NE(std::string(contracts::LastViolationMessage()).find("test.hot_fixture"),
            std::string::npos);
}

TEST_F(ContractsTest, ExemptBlockSuppressesAllocAccounting) {
  {
    DN_HOT_SCOPE("test.exempt_fixture");
    DN_HOT_EXEMPT("declared cold for this test");
    std::vector<int> cold;
    cold.push_back(1);
  }
  EXPECT_EQ(contracts::Counters().hot_allocs, 0u);
}

TEST_F(ContractsTest, AllocationOutsideAnyScopeIsFree) {
  std::vector<int> v;
  v.push_back(1);
  EXPECT_EQ(contracts::Counters().hot_allocs, 0u);
}

TEST_F(ContractsTest, ViolationHookSeesHotAlloc) {
  static int hook_calls;
  static contracts::Violation last;
  hook_calls = 0;
  contracts::SetViolationHook([](const contracts::Violation& v) {
    ++hook_calls;
    last = v;
  });
  {
    DN_HOT_SCOPE("test.hook_fixture");
    // A direct operator-new call: unlike a new-expression, it can never be
    // elided by the optimizer, so the interposer always sees it.
    // dn-lint: allow(hot-alloc, this IS the runtime violation fixture)
    void* p = ::operator new(32);
    ::operator delete(p);
  }
  EXPECT_GE(hook_calls, 1);
  EXPECT_EQ(last.kind, contracts::Violation::Kind::kHotAlloc);
  EXPECT_STREQ(last.scope, "test.hook_fixture");
  EXPECT_GE(last.a, 32u);
}

// ---------------------------------------------------------------------------------
// Lock ranks. The lint half is LintRuleTest.MutexRankFires: an unannotated
// std::mutex member in src/wire fails statically; here the annotated pair
// proves the runtime tracker flags the inversion at acquire time.

struct RankedPair {
  std::mutex low;
  DN_MUTEX_RANK(low, 10);
  std::mutex high;
  DN_MUTEX_RANK(high, 20);
};

TEST_F(ContractsTest, AscendingRankAcquisitionIsClean) {
  RankedPair m;
  {
    contracts::LockGuard a(m.low);
    contracts::LockGuard b(m.high);
  }
  EXPECT_EQ(contracts::Counters().rank_inversions, 0u);
}

TEST_F(ContractsTest, RankInversionFlaggedAtAcquireTime) {
  RankedPair m;
  static int inversions_seen;
  inversions_seen = 0;
  contracts::SetViolationHook([](const contracts::Violation& v) {
    if (v.kind == contracts::Violation::Kind::kRankInversion) {
      ++inversions_seen;
    }
  });
  {
    contracts::LockGuard a(m.high);
    // Acquiring rank 10 while rank 20 is held: flagged here, before the lock
    // blocks — no second thread or actual deadlock interleaving is needed.
    contracts::LockGuard b(m.low);
  }
  EXPECT_EQ(contracts::Counters().rank_inversions, 1u);
  EXPECT_EQ(inversions_seen, 1);
  EXPECT_NE(std::string(contracts::LastViolationMessage()).find("low"),
            std::string::npos);
}

TEST_F(ContractsTest, SameRankReacquisitionIsAnInversion) {
  // Strictly increasing means rank R cannot be taken twice; self-deadlock is
  // the degenerate inversion.
  std::mutex a;
  contracts::MutexRankRegistrar ra(&a, 30, "a");
  std::mutex b;
  contracts::MutexRankRegistrar rb(&b, 30, "b");
  {
    contracts::LockGuard ga(a);
    contracts::LockGuard gb(b);
  }
  EXPECT_EQ(contracts::Counters().rank_inversions, 1u);
}

TEST_F(ContractsTest, UnrankedMutexesAreNotTracked) {
  std::mutex loose_a;
  std::mutex loose_b;
  {
    contracts::LockGuard a(loose_b);
    contracts::LockGuard b(loose_a);
  }
  EXPECT_EQ(contracts::Counters().rank_inversions, 0u);
}

TEST_F(ContractsTest, RegistrarUnregistersOnDestruction) {
  std::mutex m;
  {
    contracts::MutexRankRegistrar r(&m, 42, "m");
    EXPECT_EQ(contracts::LookupMutexRank(&m), 42);
  }
  EXPECT_EQ(contracts::LookupMutexRank(&m), -1);
}

// ---------------------------------------------------------------------------------
// Reactor context. The lint half is LintRuleTest.ReactorBlockFires.

TEST_F(ContractsTest, BlockingPointInReactorContextIsCounted) {
  DN_BLOCKING_POINT("outside reactor: fine");
  EXPECT_EQ(contracts::Counters().reactor_blocks, 0u);
  {
    DN_REACTOR_CONTEXT;
    DN_BLOCKING_POINT("test.blocking_fixture");
  }
  EXPECT_EQ(contracts::Counters().reactor_blocks, 1u);
  EXPECT_NE(std::string(contracts::LastViolationMessage()).find("test.blocking_fixture"),
            std::string::npos);
}

TEST_F(ContractsTest, GuardedRecvFlagsBlockingFdOnlyInReactorContext) {
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);  // blocking fds
  const char byte = 'x';
  ASSERT_EQ(::send(sv[1], &byte, 1, 0), 1);
  char buf = 0;
  // Outside reactor context a blocking fd is legitimate.
  EXPECT_EQ(contracts::GuardedRecv(sv[0], &buf, 1, 0), 1);
  EXPECT_EQ(contracts::Counters().reactor_blocks, 0u);
  ASSERT_EQ(::send(sv[1], &byte, 1, 0), 1);
  {
    DN_REACTOR_CONTEXT;
    EXPECT_EQ(contracts::GuardedRecv(sv[0], &buf, 1, 0), 1);
  }
  EXPECT_EQ(contracts::Counters().reactor_blocks, 1u);
  ::close(sv[0]);
  ::close(sv[1]);
}

// ---------------------------------------------------------------------------------
// Telemetry export

TEST_F(ContractsTest, PublishTelemetryExportsCounters) {
  telemetry::SetEnabled(true);
  {
    DN_HOT_SCOPE("test.telemetry_fixture");
    std::vector<int> v;
    // dn-lint: allow(hot-alloc, this IS the runtime violation fixture)
    v.push_back(1);
  }
  contracts::PublishTelemetry();
  auto& reg = telemetry::MetricsRegistry::Global();
  EXPECT_GE(reg.GetCounter("contracts.hot_allocs")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("contracts.rank_inversions")->value(), 0u);
  // Republishing replaces rather than accumulates.
  contracts::ResetCounters();
  contracts::PublishTelemetry();
  EXPECT_EQ(reg.GetCounter("contracts.hot_allocs")->value(), 0u);
}

}  // namespace
}  // namespace dumbnet
