// Tests for the sharded simulator stack: the SPSC cross-shard channel
// (src/sim/spsc.h), the topology partitioner (src/net/shard_plan.h), the
// conservative-window coordinator (src/sim/shard_set.h), and — the headline
// property — shard-count invariance at the fabric level: discovery plus a
// double-spine failure converge to the same control-plane state whether the
// fabric runs on 1 shard or 4, and a fixed shard count is bit-identical
// across repeats.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/core/fabric.h"
#include "src/net/shard_plan.h"
#include "src/sim/shard_set.h"
#include "src/sim/spsc.h"
#include "src/topo/generators.h"
#include "src/topo/serialize.h"

namespace dumbnet {
namespace {

// --- SpscChannel -------------------------------------------------------------

TEST(SpscChannelTest, FifoWithinRing) {
  SpscChannel<int> ch(8);
  for (int i = 0; i < 5; ++i) {
    ch.Push(i);
  }
  std::vector<int> out;
  ch.DrainTo(out);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
  EXPECT_TRUE(ch.EmptyUnsynchronized());
}

TEST(SpscChannelTest, OverflowSpillsAndPreservesFifo) {
  SpscChannel<int> ch(4);  // rounds to a power of two; small on purpose
  const int n = 100;       // far past capacity: most pushes spill
  for (int i = 0; i < n; ++i) {
    ch.Push(i);
  }
  std::vector<int> out;
  ch.DrainTo(out);
  ASSERT_EQ(out.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i) << "spill broke FIFO at " << i;
  }
  EXPECT_TRUE(ch.EmptyUnsynchronized());
  // The sticky spill flag resets at drain: the ring is usable again.
  ch.Push(7);
  out.clear();
  ch.DrainTo(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7);
}

// --- ShardPlan ---------------------------------------------------------------

TEST(ShardPlanTest, PartitionsLeafSpineWithHostsFollowingUplinks) {
  auto testbed = MakePaperTestbed();
  ASSERT_TRUE(testbed.ok());
  const Topology& topo = testbed.value().topo;
  ShardPlan plan = ShardPlan::Build(topo, 4);
  EXPECT_EQ(plan.shard_count, 4u);
  ASSERT_EQ(plan.switch_shard.size(), topo.switch_count());
  ASSERT_EQ(plan.host_shard.size(), topo.host_count());
  // Hosts inherit the shard of the switch they attach to, so the host-uplink
  // hop never crosses a shard boundary.
  for (uint32_t h = 0; h < topo.host_count(); ++h) {
    auto up = topo.HostUplink(h);
    ASSERT_TRUE(up.ok());
    EXPECT_EQ(plan.host_shard[h], plan.switch_shard[up.value().node.index]);
  }
  // Contiguous blocks: shard ids are non-decreasing in switch index.
  for (size_t i = 1; i < plan.switch_shard.size(); ++i) {
    EXPECT_LE(plan.switch_shard[i - 1], plan.switch_shard[i]);
  }
  // The testbed wires leaves to spines, so a 4-way split must cut links; the
  // lookahead is the minimum propagation over those cut links.
  EXPECT_GT(plan.cross_shard_links, 0u);
  TimeNs min_cross = ShardPlan::kNoCrossLinks;
  for (uint32_t li = 0; li < topo.link_count(); ++li) {
    const Link& l = topo.link_at(li);
    if (l.detached || !l.a.node.is_switch() || !l.b.node.is_switch()) {
      continue;
    }
    if (plan.switch_shard[l.a.node.index] != plan.switch_shard[l.b.node.index] &&
        l.propagation_ns < min_cross) {
      min_cross = l.propagation_ns;
    }
  }
  EXPECT_EQ(plan.lookahead, min_cross);
}

TEST(ShardPlanTest, ClampsShardCountAndHandlesSingleShard) {
  Topology topo;
  const uint32_t sw = topo.AddSwitch(4);
  const uint32_t h = topo.AddHost();
  ASSERT_TRUE(topo.AttachHost(h, sw, 1).ok());
  ShardPlan plan = ShardPlan::Build(topo, 8);
  EXPECT_EQ(plan.shard_count, 1u) << "one switch cannot split 8 ways";
  EXPECT_EQ(plan.cross_shard_links, 0u);
  EXPECT_EQ(plan.lookahead, ShardPlan::kNoCrossLinks);
}

// Characterization of ShardPlan on fat-trees: the contiguous-block partitioner
// has no pod concept. MakeFatTree(k=4) lays out switches core-first (4 cores,
// then 4 pods of 2 aggregation + 2 edge switches), so at 2 shards the block
// boundary happens to coincide with a pod boundary (only core->aggregation
// links are cut), but at 4 shards one pod is torn across shards. This test
// documents the current cut counts; a genuinely pod-aware planner would keep
// cut_intra_pod at zero for every shard count that divides the pod count and
// should update these expectations alongside its implementation.
TEST(ShardPlanTest, FatTreeSplitIsNotPodAwareCharacterization) {
  FatTreeConfig config;
  config.k = 4;
  auto ft = MakeFatTree(config);
  ASSERT_TRUE(ft.ok());
  const Topology& topo = ft.value().topo;
  ASSERT_EQ(topo.switch_count(), 20u);  // 4 core + 4 pods x (2 agg + 2 edge)

  // Pod of a switch: cores are pod-less; pod switches follow the generator's
  // layout (aggregation then edge, interleaved per pod).
  auto pod_of = [&](uint32_t sw) -> int {
    for (size_t p = 0; p < 4; ++p) {
      for (uint32_t agg : {ft.value().aggregation[2 * p], ft.value().aggregation[2 * p + 1]}) {
        if (sw == agg) {
          return static_cast<int>(p);
        }
      }
      for (uint32_t edge : {ft.value().edge[2 * p], ft.value().edge[2 * p + 1]}) {
        if (sw == edge) {
          return static_cast<int>(p);
        }
      }
    }
    return -1;  // core
  };

  for (uint32_t shards : {2u, 4u}) {
    ShardPlan plan = ShardPlan::Build(topo, shards);
    ASSERT_EQ(plan.shard_count, shards);
    uint32_t cut_intra_pod = 0;    // both endpoints in the same pod, split anyway
    uint32_t cut_core_down = 0;    // core <-> aggregation cuts
    uint32_t cut_inter_pod = 0;    // distinct-pod cuts (none exist in a fat-tree)
    for (uint32_t li = 0; li < topo.link_count(); ++li) {
      const Link& l = topo.link_at(li);
      if (l.detached || !l.a.node.is_switch() || !l.b.node.is_switch()) {
        continue;
      }
      const uint32_t a = l.a.node.index, b = l.b.node.index;
      if (plan.switch_shard[a] == plan.switch_shard[b]) {
        continue;
      }
      const int pa = pod_of(a), pb = pod_of(b);
      if (pa == -1 || pb == -1) {
        ++cut_core_down;
      } else if (pa == pb) {
        ++cut_intra_pod;
      } else {
        ++cut_inter_pod;
      }
    }
    EXPECT_EQ(cut_core_down + cut_intra_pod + cut_inter_pod, plan.cross_shard_links);
    EXPECT_EQ(cut_inter_pod, 0u) << "fat-trees have no pod-to-pod wires";
    if (shards == 2) {
      // Split lands on a pod boundary: cores + pods 0-1 low, pods 2-3 high.
      // Only the high pods' 8 aggregation->core links cross.
      EXPECT_EQ(plan.cross_shard_links, 8u);
      EXPECT_EQ(cut_core_down, 8u);
      EXPECT_EQ(cut_intra_pod, 0u);
    } else {
      // One block boundary lands mid-pod: that pod's 4 internal agg<->edge
      // links are cut on top of 12 core downlinks.
      EXPECT_EQ(plan.cross_shard_links, 16u);
      EXPECT_EQ(cut_core_down, 12u);
      EXPECT_EQ(cut_intra_pod, 4u);
    }
  }
}

// --- ShardSet ----------------------------------------------------------------

TEST(ShardSetTest, CrossShardPostsDeliverInTimestampOrder) {
  ShardSetConfig config;
  config.shards = 2;
  config.lookahead = 100;
  config.threads = 1;
  ShardSet set(config);
  std::vector<int> order;
  // Seed shard 0 with an event that posts to shard 1 beyond the window, and a
  // local follow-up; shard 1 gets its own local event in between.
  set.Post(0, 0, 10, [&] {
    order.push_back(1);
    set.Post(0, 1, 10 + 100, [&] { order.push_back(3); });
  });
  set.Post(0, 1, 50, [&] { order.push_back(2); });
  const uint64_t ran = set.Run();
  EXPECT_EQ(ran, 3u);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_EQ(set.stats().cross_posts, 1u);
  EXPECT_GE(set.stats().windows, 1u);
  EXPECT_TRUE(set.Empty());
}

TEST(ShardSetTest, RunUntilAlignsEveryShardClock) {
  ShardSetConfig config;
  config.shards = 3;
  config.lookahead = 50;
  config.threads = 1;
  ShardSet set(config);
  int fired = 0;
  set.Post(0, 0, 30, [&] { ++fired; });
  set.Post(0, 2, 400, [&] { ++fired; });  // beyond the deadline: must not run
  set.RunUntil(200);
  EXPECT_EQ(fired, 1);
  for (uint32_t s = 0; s < set.shard_count(); ++s) {
    EXPECT_EQ(set.shard(s).Now(), 200) << "shard " << s;
  }
  set.Run();
  EXPECT_EQ(fired, 2);
}

TEST(ShardSetTest, ThreadedMatchesSequential) {
  // The same ping-pong workload on sequential (threads=1) and threaded
  // (threads = shard count) execution must produce identical event counts and
  // identical per-shard tallies. Handlers only touch their own shard's slot and
  // communicate via Post, so this is shard-clean by construction — the test
  // TSan runs to certify the worker/barrier protocol.
  auto run = [](uint32_t threads) {
    ShardSetConfig config;
    config.shards = 4;
    config.lookahead = 10;
    config.threads = threads;
    ShardSet set(config);
    std::vector<uint64_t> tally(4, 0);
    // Each shard ping-pongs with its neighbor: s -> (s+1)%4, 64 rounds.
    struct Hop {
      ShardSet* set;
      std::vector<uint64_t>* tally;
    } ctx{&set, &tally};
    std::function<void(uint32_t, TimeNs, int)> hop = [&](uint32_t s, TimeNs at,
                                                         int left) {
      (*ctx.tally)[s] += s + 1;
      if (left == 0) {
        return;
      }
      const uint32_t next = (s + 1) % 4;
      ctx.set->Post(s, next, at + 10, [&hop, next, at, left] {
        hop(next, at + 10, left - 1);
      });
    };
    for (uint32_t s = 0; s < 4; ++s) {
      set.Post(0, s, 1 + s, [&hop, s] { hop(s, 1 + s, 64); });
    }
    const uint64_t ran = set.Run();
    return std::pair<uint64_t, std::vector<uint64_t>>(ran, tally);
  };
  auto seq = run(1);
  auto thr = run(4);
  EXPECT_EQ(seq.first, thr.first);
  EXPECT_EQ(seq.second, thr.second);
}

// --- Fabric-level shard-count invariance -------------------------------------

uint64_t Fnv1a(const std::string& bytes, uint64_t h = 0xCBF29CE484222325ULL) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Digest of the converged control plane: the controller's discovered topology
// plus every host's mirror. Matches dumbnet-explore's terminal digest.
uint64_t StateDigest(SimulatedFabric& fabric) {
  uint64_t h = Fnv1a(SerializeTopology(fabric.controller().db().mirror()));
  for (uint32_t host = 0; host < static_cast<uint32_t>(fabric.host_count());
       ++host) {
    h = Fnv1a(SerializeTopology(fabric.agent(host).topo_cache().db().mirror()), h);
  }
  return h;
}

struct ScenarioResult {
  uint64_t digest = 0;
  uint64_t events = 0;
  TimeNs end_time = 0;
};

// Discovery bring-up followed by a double-spine failure and recovery — the
// scenario from ISSUE satellite 3. Runs on `shards` shards in sequential
// reference mode (DUMBNET_SHARD_THREADS is irrelevant here: threads=1 via env
// keeps the run deterministic even on multicore CI).
ScenarioResult RunScenario(uint32_t shards) {
  auto testbed = MakePaperTestbed();
  EXPECT_TRUE(testbed.ok());
  const uint32_t spine0 = testbed.value().spines[0];
  const uint32_t spine1 = testbed.value().spines[1];
  SimulatedFabric fabric(std::move(testbed.value().topo), HostAgentConfig(),
                         DumbSwitchConfig(), NetworkConfig(), shards);
  EXPECT_EQ(fabric.shard_count(), shards);

  ControllerConfig config;
  config.rng_seed = 7;
  DiscoveryConfig discovery;
  discovery.max_ports = 16;
  EXPECT_TRUE(fabric.BringUp(25, config, discovery));
  fabric.Run();

  // Both spine uplinks die at the same virtual instant; traffic re-requests
  // paths; then both revive.
  const LinkIndex l0 = fabric.topo().LinkAtPort(spine0, 1);
  const LinkIndex l1 = fabric.topo().LinkAtPort(spine1, 1);
  fabric.topo().SetLinkUp(l0, false);
  fabric.topo().SetLinkUp(l1, false);
  for (uint32_t h = 0; h < 8; ++h) {
    (void)fabric.agent(h).Send(fabric.agent(h + 10).mac(), 100 + h, DataPayload{});
  }
  fabric.Run();
  fabric.topo().SetLinkUp(l0, true);
  fabric.topo().SetLinkUp(l1, true);
  fabric.Run();

  ScenarioResult r;
  r.digest = StateDigest(fabric);
  r.events = fabric.executed_events();
  r.end_time = fabric.Now();
  return r;
}

class ShardInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Force the sequential reference execution so the scenario (driven from
    // the test thread between runs) is deterministic on any core count.
    setenv("DUMBNET_SHARD_THREADS", "1", 1);
  }
  void TearDown() override { unsetenv("DUMBNET_SHARD_THREADS"); }
};

TEST_F(ShardInvarianceTest, FourShardsConvergeToSingleShardState) {
  ScenarioResult one = RunScenario(1);
  ScenarioResult four = RunScenario(4);
  // The converged control plane is a join of LWW observations — independent of
  // how the simulation was partitioned.
  EXPECT_EQ(one.digest, four.digest);
}

TEST_F(ShardInvarianceTest, FixedShardCountIsBitIdentical) {
  ScenarioResult a = RunScenario(4);
  ScenarioResult b = RunScenario(4);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
}

// Churn golden trace: a chaos schedule must converge to the same control-plane
// digest on 1 and 4 shards, and a fixed shard count must replay bit-identically.
// This holds for gray-loss schedules too: the drop stream is keyed purely on
// (link, direction, packet id) — packet ids come from per-origin counters, so
// the set of eaten packets never depends on how the run was partitioned.
ScenarioResult RunChurnScenario(uint32_t shards, uint32_t gray_links) {
  auto testbed = MakePaperTestbed();
  EXPECT_TRUE(testbed.ok());
  SimulatedFabric fabric(std::move(testbed.value().topo), HostAgentConfig(),
                         DumbSwitchConfig(), NetworkConfig(), shards);
  fabric.BringUpAdopted(25);

  chaos::ChaosConfig config;
  config.seed = 11;
  config.horizon = Ms(40);
  config.flap.links = 3;
  config.gray.links = gray_links;
  config.outage.enabled = true;
  chaos::ChaosSchedule sched = chaos::GenerateSchedule(fabric.topo(), config);
  EXPECT_FALSE(sched.empty());
  chaos::RunSchedule(fabric, sched);
  EXPECT_TRUE(chaos::CheckConvergence(fabric, sched.TouchedLinks()).empty())
      << "churn did not converge on " << shards << " shard(s)";

  ScenarioResult r;
  r.digest = StateDigest(fabric);
  r.events = fabric.executed_events();
  r.end_time = fabric.Now();
  return r;
}

TEST_F(ShardInvarianceTest, ChurnScheduleDigestIsShardCountInvariant) {
  ScenarioResult one = RunChurnScenario(1, /*gray_links=*/0);
  ScenarioResult four = RunChurnScenario(4, /*gray_links=*/0);
  EXPECT_EQ(one.digest, four.digest);
}

TEST_F(ShardInvarianceTest, ChurnScheduleReplayIsBitIdentical) {
  ScenarioResult a = RunChurnScenario(4, /*gray_links=*/0);
  ScenarioResult b = RunChurnScenario(4, /*gray_links=*/0);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
}

// Gray loss used to be the one chaos ingredient that was legitimately
// shard-dependent (the drop stream consumed shard-local offer positions).
// With packet-id keying the whole schedule family is partition-stable.
TEST_F(ShardInvarianceTest, GrayLossScheduleDigestIsShardCountInvariant) {
  ScenarioResult one = RunChurnScenario(1, /*gray_links=*/2);
  ScenarioResult four = RunChurnScenario(4, /*gray_links=*/2);
  EXPECT_EQ(one.digest, four.digest);
}

TEST_F(ShardInvarianceTest, GrayLossScheduleReplayIsBitIdentical) {
  ScenarioResult a = RunChurnScenario(4, /*gray_links=*/2);
  ScenarioResult b = RunChurnScenario(4, /*gray_links=*/2);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
}

}  // namespace
}  // namespace dumbnet
