// Tests of the SimulatedFabric assembly (src/core) — the public entry point.
#include "src/core/fabric.h"

#include <gtest/gtest.h>

#include "src/topo/generators.h"

namespace dumbnet {
namespace {

TEST(SimulatedFabricTest, BringUpViaDiscovery) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  SimulatedFabric fabric(std::move(tb.value().topo));
  DiscoveryConfig discovery;
  discovery.max_ports = 16;
  discovery.pm_send_cost = Us(1);
  discovery.pm_recv_cost = Us(1);
  discovery.probe_timeout = Ms(20);
  ASSERT_TRUE(fabric.BringUp(25, ControllerConfig(), discovery));
  EXPECT_TRUE(fabric.has_controller());
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    EXPECT_TRUE(fabric.agent(h).bootstrapped());
  }
}

TEST(SimulatedFabricTest, BringUpAdoptedIsInstant) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  SimulatedFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(0);
  // No probing: far fewer packets than discovery needs.
  EXPECT_LT(fabric.net().stats().delivered, 2000u);
  EXPECT_EQ(fabric.controller().db().switch_count(), 7u);
}

TEST(SimulatedFabricTest, AccessorsAreConsistent) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  SimulatedFabric fabric(std::move(tb.value().topo));
  EXPECT_EQ(fabric.host_count(), fabric.topo().host_count());
  EXPECT_EQ(fabric.switch_count(), fabric.topo().switch_count());
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    EXPECT_EQ(fabric.agent(h).mac(), fabric.topo().host_at(h).mac);
  }
  for (uint32_t s = 0; s < fabric.switch_count(); ++s) {
    EXPECT_EQ(fabric.dumb_switch(s).uid(), fabric.topo().switch_at(s).uid);
  }
}

TEST(SimulatedFabricTest, TwoFabricsAreIndependent) {
  LeafSpineConfig a_config;
  a_config.num_spine = 1;
  a_config.num_leaf = 1;
  a_config.hosts_per_leaf = 2;
  a_config.switch_ports = 8;
  LeafSpineConfig b_config = a_config;
  b_config.id_space = 1;
  auto a = MakeLeafSpine(a_config);
  auto b = MakeLeafSpine(b_config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  SimulatedFabric fab_a(std::move(a.value().topo));
  SimulatedFabric fab_b(std::move(b.value().topo));
  EXPECT_NE(fab_a.agent(0).mac(), fab_b.agent(0).mac());
  EXPECT_NE(fab_a.dumb_switch(0).uid(), fab_b.dumb_switch(0).uid());
}

TEST(SimulatedFabricTest, DeterministicRuns) {
  auto run = [] {
    auto tb = MakePaperTestbed();
    SimulatedFabric fabric(std::move(tb.value().topo));
    fabric.BringUpAdopted(25);
    for (uint32_t h = 0; h < 10; ++h) {
      (void)fabric.agent(h).Send(fabric.agent((h + 7) % 25).mac(), h, DataPayload{});
    }
    fabric.Run();
    return std::pair(fabric.net().stats().delivered, fabric.Now());
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dumbnet
