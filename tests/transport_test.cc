// Tests of the reliable transport over both fabrics: completion, loss recovery,
// and the failover interaction with the host agent (the Figure 11b machinery).
#include "src/transport/reliable_flow.h"

#include <gtest/gtest.h>

#include "src/topo/generators.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

TEST(ReliableFlowTest, CompletesOverDumbNet) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);

  DumbNetChannel src_channel(&fabric.agent(0));
  DumbNetChannel dst_channel(&fabric.agent(12));
  ReliableFlowReceiver receiver(&dst_channel, 1);
  FlowConfig config;
  config.total_bytes = 1 << 20;  // 1 MiB
  ReliableFlowSender sender(&src_channel, 1, fabric.agent(12).mac(), config);

  bool done = false;
  sender.Start([&] { done = true; });
  fabric.Run();

  EXPECT_TRUE(done);
  EXPECT_TRUE(sender.progress().finished);
  EXPECT_EQ(sender.progress().bytes_acked, config.total_bytes);
  EXPECT_GE(receiver.bytes_received(), config.total_bytes);
}

TEST(ReliableFlowTest, SurvivesLinkFailureViaFailover) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  auto leaves = tb.value().leaves;
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);

  DumbNetChannel src_channel(&fabric.agent(0));
  DumbNetChannel dst_channel(&fabric.agent(12));
  ReliableFlowReceiver receiver(&dst_channel, 1);
  FlowConfig config;
  config.total_bytes = 4 << 20;
  ReliableFlowSender sender(&src_channel, 1, fabric.agent(12).mac(), config);

  bool done = false;
  sender.Start([&] { done = true; });

  // Cut one of leaf0's uplinks mid-transfer (whichever the flow bound to, the
  // failover machinery must keep the flow alive).
  fabric.RunUntil(Ms(2));
  fabric.topo().SetLinkUp(fabric.topo().LinkAtPort(leaves[0], 1), false);
  fabric.Run();

  EXPECT_TRUE(done);
  EXPECT_EQ(sender.progress().bytes_acked, config.total_bytes);
}

TEST(ReliableFlowTest, RetransmitsAfterBlackholePeriod) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  auto leaves = tb.value().leaves;
  auto spines = tb.value().spines;
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);

  DumbNetChannel src_channel(&fabric.agent(0));
  DumbNetChannel dst_channel(&fabric.agent(12));
  ReliableFlowReceiver receiver(&dst_channel, 1);
  FlowConfig config;
  config.total_bytes = 8 << 20;
  ReliableFlowSender sender(&src_channel, 1, fabric.agent(12).mac(), config);
  bool done = false;
  sender.Start([&] { done = true; });

  fabric.RunUntil(Ms(2));
  // Cut BOTH uplinks briefly: total blackhole, nothing can reroute.
  LinkIndex l0 = fabric.topo().LinkAtPort(leaves[0], 1);
  LinkIndex l1 = fabric.topo().LinkAtPort(leaves[0], 2);
  fabric.topo().SetLinkUp(l0, false);
  fabric.topo().SetLinkUp(l1, false);
  fabric.RunUntil(Ms(200));
  EXPECT_FALSE(done);
  fabric.topo().SetLinkUp(l1, true);
  fabric.Run();

  EXPECT_TRUE(done);
  EXPECT_GT(sender.progress().timeouts, 0u);
  EXPECT_GT(sender.progress().retransmissions, 0u);
}

TEST(ReliableFlowTest, CompletesOverEthernetBaseline) {
  Topology t;
  t.AddSwitch(8);
  t.AddSwitch(8);
  t.ConnectSwitches(0, 1, 1, 1).value();
  uint32_t h0 = t.AddHost();
  uint32_t h1 = t.AddHost();
  t.AttachHost(h0, 0, 5).value();
  t.AttachHost(h1, 1, 5).value();

  Simulator sim;
  Topology topo = std::move(t);
  Network net(&sim, &topo);
  EthernetSwitch s0(&net, 0), s1(&net, 1);
  EthernetHost e0(&net, 0), e1(&net, 1);
  sim.RunUntil(Sec(1));  // STP warmup

  EthernetChannel src_channel(&e0, &sim);
  EthernetChannel dst_channel(&e1, &sim);
  ReliableFlowReceiver receiver(&dst_channel, 9);
  FlowConfig config;
  config.total_bytes = 1 << 20;
  ReliableFlowSender sender(&src_channel, 9, e1.mac(), config);
  bool done = false;
  sender.Start([&] { done = true; });
  sim.RunUntil(sim.Now() + Sec(30));
  EXPECT_TRUE(done);
}

TEST(ReliableFlowTest, StopHaltsTraffic) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);
  DumbNetChannel src_channel(&fabric.agent(0));
  DumbNetChannel dst_channel(&fabric.agent(1));
  ReliableFlowReceiver receiver(&dst_channel, 3);
  ReliableFlowSender sender(&src_channel, 3, fabric.agent(1).mac(), FlowConfig{});
  sender.Start();
  fabric.RunUntil(Ms(5));
  sender.Stop();
  uint64_t sent = sender.progress().segments_sent;
  fabric.RunUntil(Ms(50));
  EXPECT_EQ(sender.progress().segments_sent, sent);
}

}  // namespace
}  // namespace dumbnet
