// Tests for src/chaos: schedule generation determinism and well-formedness,
// serialize/parse round-trips, RunSchedule convergence on a healthy fabric,
// notification-interceptor accounting, gray-loss seed determinism, and the
// ddmin schedule minimizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"
#include "src/util/rng.h"
#include "tests/random_topo.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

using chaos::ChaosAction;
using chaos::ChaosConfig;
using chaos::ChaosSchedule;
using testing_topo::RandomHostedTopology;

ChaosConfig SmallConfig(uint64_t seed) {
  ChaosConfig config;
  config.seed = seed;
  config.start = Ms(5);
  config.horizon = Ms(40);
  config.settle = Ms(2);
  config.flap.links = 2;
  config.gray.links = 1;
  config.outage.enabled = true;
  return config;
}

TEST(ChaosGeneratorTest, SameSeedSameSchedule) {
  Topology topo = RandomHostedTopology(3, 8, 5, 1);
  ChaosSchedule a = chaos::GenerateSchedule(topo, SmallConfig(17));
  ChaosSchedule b = chaos::GenerateSchedule(topo, SmallConfig(17));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.actions, b.actions);

  ChaosSchedule c = chaos::GenerateSchedule(topo, SmallConfig(18));
  EXPECT_NE(a.actions, c.actions);
}

TEST(ChaosGeneratorTest, SchedulesAreWellFormed) {
  Topology topo = RandomHostedTopology(9, 10, 7, 1);
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const ChaosConfig config = SmallConfig(seed);
    ChaosSchedule sched = chaos::GenerateSchedule(topo, config);
    ASSERT_FALSE(sched.empty()) << "seed " << seed;

    // Time-sorted, nothing beyond the horizon.
    for (size_t i = 1; i < sched.actions.size(); ++i) {
      EXPECT_LE(sched.actions[i - 1].at, sched.actions[i].at);
    }
    EXPECT_LE(sched.actions.back().at, config.horizon);

    // Every touched link's final transition is the simultaneous restore at
    // `horizon`, preceded by a forced down at `horizon - settle`.
    for (LinkIndex li : sched.TouchedLinks()) {
      const ChaosAction* last_transition = nullptr;
      bool forced_down = false;
      for (const ChaosAction& a : sched.actions) {
        if (a.link != li) {
          continue;
        }
        if (a.kind == ChaosAction::Kind::kLinkDown ||
            a.kind == ChaosAction::Kind::kLinkUp) {
          last_transition = &a;
          forced_down |= a.kind == ChaosAction::Kind::kLinkDown &&
                         a.at == config.horizon - config.settle;
        }
      }
      ASSERT_NE(last_transition, nullptr);
      EXPECT_EQ(last_transition->kind, ChaosAction::Kind::kLinkUp);
      EXPECT_EQ(last_transition->at, config.horizon);
      EXPECT_TRUE(forced_down) << "link " << li << " never forced down before restore";
    }

    // Every gray link is cleared before the restore, and only inter-switch
    // links are touched (host uplinks must stay healthy).
    for (LinkIndex li : sched.GrayLinks()) {
      bool cleared = false;
      for (const ChaosAction& a : sched.actions) {
        cleared |= a.link == li && a.kind == ChaosAction::Kind::kGrayClear;
      }
      EXPECT_TRUE(cleared) << "gray link " << li << " never cleared";
    }
    for (LinkIndex li : sched.TouchedLinks()) {
      const Link& l = topo.link_at(li);
      EXPECT_TRUE(l.a.node.is_switch() && l.b.node.is_switch());
    }
  }
}

TEST(ChaosScheduleTest, SerializeParseRoundTrip) {
  Topology topo = RandomHostedTopology(5, 8, 6, 1);
  ChaosSchedule sched = chaos::GenerateSchedule(topo, SmallConfig(23));
  ASSERT_FALSE(sched.empty());

  const std::string text = chaos::SerializeSchedule(sched, "unit test");
  EXPECT_NE(text.find("dumbnet-explore schedule v1"), std::string::npos);
  EXPECT_NE(text.find("dumbnet-chaos schedule v1"), std::string::npos);
  EXPECT_NE(text.find("unit test"), std::string::npos);

  auto parsed = chaos::ParseSchedule(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed.value().actions, sched.actions);
}

TEST(ChaosScheduleTest, ParseRejectsMalformedInput) {
  // Gray loss above 100 % is nonsense.
  EXPECT_FALSE(chaos::ParseSchedule("# chaos 1000 gray 3 2000000\n").ok());
  // Actions must be time-sorted.
  EXPECT_FALSE(
      chaos::ParseSchedule("# chaos 2000 down 1\n# chaos 1000 up 1\n").ok());
  // Truncated action line.
  EXPECT_FALSE(chaos::ParseSchedule("# chaos 1000 down\n").ok());
}

TEST(ChaosRunTest, FlapScheduleConvergesOnPaperTestbed) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  SimulatedFabric fabric(std::move(tb.value().topo), HostAgentConfig(),
                         DumbSwitchConfig(), NetworkConfig(), /*shards=*/1);
  fabric.BringUpAdopted(25);

  ChaosConfig config = SmallConfig(7);
  config.gray.links = 0;  // flap-only
  config.outage.enabled = false;
  ChaosSchedule sched = chaos::GenerateSchedule(fabric.topo(), config);
  ASSERT_FALSE(sched.empty());
  const std::vector<LinkIndex> touched = sched.TouchedLinks();

  chaos::RunSchedule(fabric, sched);

  // At quiescence after the simultaneous restore, every cache must agree with
  // the (all-up) ground truth about every churned link.
  EXPECT_TRUE(chaos::CheckConvergence(fabric, touched).empty());
  EXPECT_EQ(chaos::CountStaleEntries(fabric, touched), 0u);
}

TEST(ChaosInterceptorTest, DelayAndDropAreCountedPerHost) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  auto spines = tb.value().spines;
  SimulatedFabric fabric(std::move(tb.value().topo), HostAgentConfig(),
                         DumbSwitchConfig(), NetworkConfig(), /*shards=*/1);
  fabric.BringUpAdopted(25);

  // Host 0 drops every fabric copy and defers every gossip copy; the deferred
  // copies still land, so host 0 stays convergent via gossip alone.
  fabric.agent(0).SetNotificationInterceptor(
      [](const LinkEventPayload&, bool from_fabric) -> TimeNs {
        return from_fabric ? HostAgent::kDropNotification : Us(50);
      });

  const LinkIndex victim = fabric.topo().LinkAtPort(spines[0], 1);
  ASSERT_NE(victim, kInvalidLink);
  fabric.topo().SetLinkUp(victim, false);
  fabric.RunUntil(fabric.Now() + Ms(20));
  fabric.topo().SetLinkUp(victim, true);
  fabric.Run();

  EXPECT_GT(fabric.agent(0).stats().notifications_dropped, 0u);
  EXPECT_GT(fabric.agent(0).stats().notifications_delayed, 0u);
  EXPECT_EQ(fabric.agent(1).stats().notifications_dropped, 0u);
  EXPECT_TRUE(chaos::CheckConvergence(fabric, {victim}).empty());
}

// Two runs with the same gray seed drop the identical number of packets; the
// drop stream is a pure function of (gray_seed, link, direction, packet id).
TEST(ChaosGrayTest, GrayLossIsSeedDeterministic) {
  auto run = [](uint64_t gray_seed) -> uint64_t {
    LeafSpineConfig cfg;
    cfg.num_spine = 2;
    cfg.num_leaf = 2;
    cfg.hosts_per_leaf = 4;
    auto ls = MakeLeafSpine(cfg);
    NetworkConfig net_config;
    net_config.gray_seed = gray_seed;
    SimulatedFabric fabric(std::move(ls.value().topo), HostAgentConfig(),
                           DumbSwitchConfig(), net_config, /*shards=*/1);
    fabric.BringUpAdopted(0);

    // Every inter-switch link turns 30 % lossy for 25 ms.
    ChaosSchedule sched;
    for (LinkIndex li = 0; li < fabric.topo().link_count(); ++li) {
      const Link& l = fabric.topo().link_at(li);
      if (!l.a.node.is_switch() || !l.b.node.is_switch()) {
        continue;
      }
      sched.actions.push_back({Ms(1), ChaosAction::Kind::kGraySet, li, 300000});
    }
    const size_t grayed = sched.actions.size();
    for (size_t i = 0; i < grayed; ++i) {
      sched.actions.push_back(
          {Ms(26), ChaosAction::Kind::kGrayClear, sched.actions[i].link, 0});
    }

    chaos::RunHooks hooks;
    Rng traffic(99);
    uint64_t flow = 1;
    hooks.on_boundary = [&](TimeNs) {
      for (int i = 0; i < 4; ++i) {
        const uint32_t src = static_cast<uint32_t>(traffic.UniformInt(4));
        const uint32_t dst = 4 + static_cast<uint32_t>(traffic.UniformInt(4));
        (void)fabric.agent(src).Send(fabric.agent(dst).mac(), flow++, DataPayload{});
      }
    };
    chaos::RunSchedule(fabric, sched, hooks);
    return fabric.net().stats().dropped_gray;
  };

  const uint64_t first = run(0xFEEDULL);
  const uint64_t second = run(0xFEEDULL);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, second);
}

TEST(ChaosMinimizeTest, ReducesToSingleCulpritAction) {
  ChaosSchedule failing;
  for (int i = 0; i < 12; ++i) {
    failing.actions.push_back({Ms(i + 1),
                               i % 2 == 0 ? ChaosAction::Kind::kLinkDown
                                          : ChaosAction::Kind::kLinkUp,
                               static_cast<LinkIndex>(i), 0});
  }
  // The "bug" needs only the action touching link 7.
  auto still_fails = [](const ChaosSchedule& cand) {
    for (const ChaosAction& a : cand.actions) {
      if (a.link == 7) {
        return true;
      }
    }
    return false;
  };
  ChaosSchedule minimized = chaos::MinimizeSchedule(failing, still_fails);
  ASSERT_EQ(minimized.actions.size(), 1u);
  EXPECT_EQ(minimized.actions[0].link, 7u);
}

TEST(ChaosMinimizeTest, ResultIsFailingSubsequence) {
  ChaosSchedule failing;
  for (int i = 0; i < 10; ++i) {
    failing.actions.push_back(
        {Ms(i + 1), ChaosAction::Kind::kLinkDown, static_cast<LinkIndex>(i), 0});
  }
  // Fails iff BOTH link 2 and link 8 are present (a two-action interaction).
  auto still_fails = [](const ChaosSchedule& cand) {
    bool two = false, eight = false;
    for (const ChaosAction& a : cand.actions) {
      two |= a.link == 2;
      eight |= a.link == 8;
    }
    return two && eight;
  };
  ChaosSchedule minimized = chaos::MinimizeSchedule(failing, still_fails);
  EXPECT_TRUE(still_fails(minimized));
  EXPECT_EQ(minimized.actions.size(), 2u);
  // Subsequence check: every surviving action appears in the original order.
  size_t pos = 0;
  for (const ChaosAction& a : minimized.actions) {
    while (pos < failing.actions.size() && !(failing.actions[pos] == a)) {
      ++pos;
    }
    EXPECT_LT(pos, failing.actions.size());
  }
}

}  // namespace
}  // namespace dumbnet
