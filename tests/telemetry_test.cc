// Telemetry subsystem tests: metrics registry snapshot/diff, log-bucketed
// histogram accuracy against exact ground truth, flight-recorder ring
// semantics and dump round-trips, DN_LOG_KV capture, in-band path provenance
// (including an injected misroute), and thread-safety of the counters under a
// ThreadPool (run the tsan preset to get the full data-race check).
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fabric.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/provenance.h"
#include "src/telemetry/telemetry.h"
#include "src/topo/generators.h"
#include "src/util/logging.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace dumbnet {
namespace {

using telemetry::Component;
using telemetry::EventKind;
using telemetry::FlightRecorder;
using telemetry::MetricsRegistry;
using telemetry::TraceEvent;

TraceEvent MakeEvent(uint64_t seq) {
  TraceEvent ev;
  ev.ts_ns = static_cast<int64_t>(seq * 100);
  ev.id = seq;
  ev.arg = seq * 2;
  ev.component = Component::kSwitch;
  ev.kind = EventKind::kForward;
  return ev;
}

// --- Metrics registry ---------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndSnapshots) {
  auto& reg = MetricsRegistry::Global();
  telemetry::Counter* c = reg.GetCounter("test.reg.counter");
  telemetry::Gauge* g = reg.GetGauge("test.reg.gauge");
  c->Reset();
  g->Reset();

  // Find-or-create returns stable pointers.
  EXPECT_EQ(c, reg.GetCounter("test.reg.counter"));
  EXPECT_EQ(g, reg.GetGauge("test.reg.gauge"));

  c->Inc();
  c->Inc(41);
  g->Set(7);
  g->Add(-3);

  auto snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Value("test.reg.counter"), 42.0);
  EXPECT_DOUBLE_EQ(snap.Value("test.reg.gauge"), 4.0);
  EXPECT_DOUBLE_EQ(snap.Value("test.reg.absent"), 0.0);
  EXPECT_EQ(snap.Find("test.reg.absent"), nullptr);
  ASSERT_NE(snap.Find("test.reg.counter"), nullptr);
}

TEST(MetricsRegistry, DiffSubtractsCountersKeepsGauges) {
  auto& reg = MetricsRegistry::Global();
  telemetry::Counter* c = reg.GetCounter("test.diff.counter");
  telemetry::Gauge* g = reg.GetGauge("test.diff.gauge");
  telemetry::HistogramMetric* h = reg.GetHistogram("test.diff.hist");
  c->Reset();
  g->Reset();
  h->Reset();

  c->Inc(10);
  g->Set(100);
  h->Record(1.0);
  auto before = reg.Snapshot();

  c->Inc(5);
  g->Set(-8);
  h->Record(2.0);
  h->Record(3.0);
  auto after = reg.Snapshot();

  auto delta = Diff(before, after);
  EXPECT_DOUBLE_EQ(delta.Value("test.diff.counter"), 5.0);   // 15 - 10
  EXPECT_DOUBLE_EQ(delta.Value("test.diff.gauge"), -8.0);    // point-in-time
  EXPECT_DOUBLE_EQ(delta.Value("test.diff.hist"), 2.0);      // 3 - 1 samples
}

TEST(MetricsRegistry, JsonExportContainsAllSections) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test.json.counter")->Reset();
  reg.GetCounter("test.json.counter")->Inc(3);
  reg.GetHistogram("test.json.hist")->Reset();
  reg.GetHistogram("test.json.hist")->Record(5.0);

  std::ostringstream os;
  reg.WriteJson(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
}

TEST(MetricsRegistry, RuntimeDisableStopsMacroRecording) {
  auto& reg = MetricsRegistry::Global();
  telemetry::Counter* c = reg.GetCounter("test.disable.counter");
  c->Reset();
  DN_COUNTER_INC("test.disable.counter");
  telemetry::SetEnabled(false);
  DN_COUNTER_INC("test.disable.counter");
  DN_COUNTER_INC("test.disable.counter");
  telemetry::SetEnabled(true);
  DN_COUNTER_INC("test.disable.counter");
  EXPECT_EQ(c->value(), telemetry::kCompiledIn ? 2u : 0u);
}

// --- Log-bucketed histogram accuracy ------------------------------------------------

TEST(LogHistogramAccuracy, PercentilesMatchExactWithinBound) {
  // Deterministic long-tailed stream spanning several binary decades.
  Rng rng(12345);
  SampleSet exact;
  LogHistogram hist;
  telemetry::HistogramMetric metric;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.UniformDouble();
    double x = 0.05 + 80.0 * u * u * u;  // heavy right tail, range ~[0.05, 80]
    exact.Add(x);
    hist.Add(x);
    metric.Record(x);
  }
  const double bound = hist.RelativeErrorBound();
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    double truth = exact.Percentile(p);
    double est = hist.Percentile(p);
    EXPECT_NEAR(est, truth, truth * 2.0 * bound)
        << "p" << p << ": exact=" << truth << " log-bucketed=" << est;
  }
  // The telemetry metric wraps the very same collector: identical percentiles.
  LogHistogram via_metric = metric.Snapshot();
  for (double p : {50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(via_metric.Percentile(p), hist.Percentile(p));
  }
  // min/max are exact regardless of bucketing.
  EXPECT_DOUBLE_EQ(hist.min(), exact.min());
  EXPECT_DOUBLE_EQ(hist.max(), exact.max());
  EXPECT_EQ(hist.count(), exact.count());
}

TEST(LogHistogramAccuracy, NonPositiveSamplesAndFractionBelow) {
  LogHistogram hist;
  hist.Add(0.0);
  hist.Add(-3.0);
  hist.Add(1.0);
  hist.Add(2.0);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.min(), -3.0);
  EXPECT_DOUBLE_EQ(hist.max(), 2.0);
  EXPECT_NEAR(hist.FractionBelow(0.5), 0.5, 1e-9);  // the two non-positives
  EXPECT_NEAR(hist.FractionBelow(100.0), 1.0, 1e-9);
}

// --- Flight recorder ----------------------------------------------------------------

TEST(FlightRecorder, RingWrapsAndKeepsNewestInOrder) {
  auto& fr = FlightRecorder::Global();
  fr.SetCapacity(8);
  fr.Clear();
  for (uint64_t i = 0; i < 20; ++i) {
    fr.Record(MakeEvent(i));
  }
  EXPECT_EQ(fr.size(), 8u);
  EXPECT_EQ(fr.total_recorded(), 20u);

  std::vector<TraceEvent> snap = fr.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].id, 12 + i) << "oldest-first after wrap";
  }
  std::vector<TraceEvent> last3 = fr.LastN(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].id, 17u);
  EXPECT_EQ(last3[2].id, 19u);

  fr.SetCapacity(64 * 1024);  // restore the default for other tests
}

TEST(FlightRecorder, TextDumpRoundTrips) {
  auto& fr = FlightRecorder::Global();
  fr.SetCapacity(16);
  TraceEvent named = MakeEvent(1);
  named.component = Component::kLog;
  named.kind = EventKind::kLogEvent;
  named.name = "host.link_event";
  fr.Record(named);
  fr.Record(MakeEvent(2));

  std::ostringstream os;
  telemetry::WriteTextDump(os, fr.Snapshot());
  std::istringstream is(os.str());
  telemetry::TraceDump dump;
  std::string error;
  ASSERT_TRUE(telemetry::TraceDump::Load(is, &dump, &error)) << error;
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_EQ(dump.events[0].component, Component::kLog);
  EXPECT_EQ(dump.events[0].kind, EventKind::kLogEvent);
  ASSERT_NE(dump.events[0].name, nullptr);
  EXPECT_STREQ(dump.events[0].name, "host.link_event");
  EXPECT_EQ(dump.events[1].id, 2u);
  EXPECT_EQ(dump.events[1].component, Component::kSwitch);

  std::istringstream bad("not a flight recorder dump\n");
  telemetry::TraceDump bad_dump;
  EXPECT_FALSE(telemetry::TraceDump::Load(bad, &bad_dump, &error));
  EXPECT_FALSE(error.empty());

  fr.SetCapacity(64 * 1024);
}

TEST(FlightRecorder, ChromeTraceListsEveryEvent) {
  std::vector<TraceEvent> events;
  for (uint64_t i = 0; i < 3; ++i) {
    events.push_back(MakeEvent(i));
  }
  std::ostringstream os;
  telemetry::WriteChromeTrace(os, events);
  std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  size_t n = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\": \"i\"", pos)) != std::string::npos; ++pos) {
    ++n;
  }
  EXPECT_EQ(n, 3u);
}

TEST(FlightRecorder, DumpOnFailureIsSafeOnEmptyRing) {
  auto& fr = FlightRecorder::Global();
  fr.Clear();
  fr.DumpOnFailure("unit test, empty ring");  // must not crash
  fr.Record(MakeEvent(7));
  fr.DumpOnFailure("unit test, one event", 64);
}

TEST(FlightRecorder, LogCaptureRecordsKvEvents) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  auto& fr = FlightRecorder::Global();
  FlightRecorder::InstallLogCapture();
  fr.Clear();
  DN_LOG_KV(kDebug, "test.kv_event").Kv("a", 1).Kv("b", 2);
  std::vector<TraceEvent> snap = fr.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].component, Component::kLog);
  EXPECT_EQ(snap[0].kind, EventKind::kLogEvent);
  ASSERT_NE(snap[0].name, nullptr);
  EXPECT_STREQ(snap[0].name, "test.kv_event");
  SetLogKvSink(nullptr);
  fr.Clear();
}

// --- Concurrency (meaningful under -DDUMBNET_SANITIZE=thread) -----------------------

TEST(TelemetryConcurrency, CountersAreRaceFreeFromPoolWorkers) {
  auto& reg = MetricsRegistry::Global();
  telemetry::Counter* c = reg.GetCounter("test.concurrent.counter");
  telemetry::Gauge* g = reg.GetGauge("test.concurrent.gauge");
  c->Reset();
  g->Reset();

  ThreadPool pool(3);
  constexpr size_t kIters = 20000;
  pool.ParallelFor(kIters, [&](size_t, size_t) {
    // Registry lookups and metric updates race against each other on purpose.
    MetricsRegistry::Global().GetCounter("test.concurrent.counter")->Inc();
    g->Add(1);
    DN_COUNTER_INC("test.concurrent.macro");
  });
  EXPECT_EQ(c->value(), kIters);
  EXPECT_EQ(g->value(), static_cast<int64_t>(kIters));
  if (telemetry::kCompiledIn) {
    EXPECT_EQ(reg.GetCounter("test.concurrent.macro")->value(), kIters);
    reg.GetCounter("test.concurrent.macro")->Reset();
  }
}

TEST(TelemetryConcurrency, RecorderAcceptsConcurrentWriters) {
  auto& fr = FlightRecorder::Global();
  fr.SetCapacity(1024);
  fr.Clear();  // SetCapacity clears the ring but not the lifetime total
  ThreadPool pool(3);
  pool.ParallelFor(5000, [&](size_t i, size_t) { fr.Record(MakeEvent(i)); });
  EXPECT_EQ(fr.size(), 1024u);
  EXPECT_EQ(fr.total_recorded(), 5000u);
  fr.SetCapacity(64 * 1024);
}

// --- Path provenance ----------------------------------------------------------------

TEST(PathProvenance, MatchHelper) {
  telemetry::PathProvenance p;
  EXPECT_FALSE(p.armed());
  EXPECT_TRUE(telemetry::ProvenanceMatches(p));  // unarmed always matches

  p.promised = {0xA, 0xB};
  p.hops.push_back({0xA, 1, 2});
  p.hops.push_back({0xB, 3, 0});
  EXPECT_TRUE(telemetry::ProvenanceMatches(p));

  p.hops[1].switch_uid = 0xC;
  EXPECT_FALSE(telemetry::ProvenanceMatches(p));
  EXPECT_NE(telemetry::DescribeProvenance(p).find("promised="), std::string::npos);

  p.hops.pop_back();
  EXPECT_FALSE(telemetry::ProvenanceMatches(p)) << "short path must not match";
}

TEST(PathProvenance, FabricRunIsDivergenceFree) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  SimulatedFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(/*controller_host=*/25);

  uint64_t received = 0;
  fabric.agent(1).SetDataHandler(
      [&](const Packet&, const DataPayload&) { ++received; });
  for (int i = 0; i < 5; ++i) {
    DataPayload d;
    d.bytes = 200;
    ASSERT_TRUE(fabric.agent(0).Send(fabric.agent(1).mac(), /*flow_id=*/9, d).ok());
  }
  fabric.Run();
  EXPECT_EQ(received, 5u);
  EXPECT_EQ(fabric.agent(1).stats().path_divergence, 0u);
}

TEST(PathProvenance, InjectedMisrouteRaisesDivergence) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  SimulatedFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(/*controller_host=*/25);

  // Warm host 0's path cache toward host 12 (different leaf, multi-hop path).
  const uint64_t dst = fabric.agent(12).mac();
  DataPayload warm;
  warm.bytes = 100;
  ASSERT_TRUE(fabric.agent(0).Send(dst, /*flow_id=*/1, warm).ok());
  fabric.Run();
  ASSERT_EQ(fabric.agent(12).stats().path_divergence, 0u);

  auto route = fabric.agent(0).path_table().RouteFor(dst, /*flow_id=*/1);
  ASSERT_TRUE(route.ok());
  ASSERT_GE(route.value()->uid_path.size(), 2u);

  auto before = MetricsRegistry::Global().Snapshot();

  // The misroute: send along route's real tags but promise a tampered UID
  // sequence — as if the fabric had taken a different path than the host was
  // promised. The receiver's verification must flag it.
  DataPayload d;
  d.flow_id = 2;
  d.bytes = 100;
  Packet pkt = MakeDumbNetPacket(fabric.agent(0).mac(), dst, route.value()->tags, d);
  pkt.provenance.promised = route.value()->uid_path;
  pkt.provenance.promised[0] ^= 0x1;  // not the switch the packet will traverse
  fabric.net().SendFromHost(0, pkt);
  fabric.Run();

  EXPECT_EQ(fabric.agent(12).stats().path_divergence, 1u);
  auto delta = Diff(before, MetricsRegistry::Global().Snapshot());
  EXPECT_DOUBLE_EQ(delta.Value("host.path_divergence"), 1.0);
}

}  // namespace
}  // namespace dumbnet
