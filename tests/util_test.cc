#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/util/logging.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace dumbnet {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Error(ErrorCode::kNotFound, "missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message(), "missing");
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_EQ(r.error().ToString(), "not_found: missing");
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(StatusTest, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "ok");
  Status bad = Error(ErrorCode::kExhausted, "full");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kExhausted);
}

TEST(ErrorCodeTest, AllNamesDistinct) {
  const ErrorCode codes[] = {
      ErrorCode::kOk,            ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
      ErrorCode::kOutOfRange,    ErrorCode::kAlreadyExists,   ErrorCode::kUnavailable,
      ErrorCode::kPermissionDenied, ErrorCode::kExhausted,    ErrorCode::kMalformed,
      ErrorCode::kInternal};
  std::set<std::string> names;
  for (ErrorCode c : codes) {
    names.insert(ErrorCodeName(c));
  }
  EXPECT_EQ(names.size(), std::size(codes));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next64() == b.Next64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.UniformInt(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ParetoAboveScale) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(31), b(31);
  Rng fa = a.Fork(1), fb = b.Fork(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.Next64(), fb.Next64());
  }
}

TEST(OnlineStatsTest, Basics) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSetTest, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(99), 99.01, 0.1);
}

TEST(SampleSetTest, CdfMonotone) {
  SampleSet s;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    s.Add(rng.UniformDouble());
  }
  auto cdf = s.Cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
}

TEST(SampleSetTest, FractionBelow) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.FractionBelow(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.FractionBelow(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionBelow(100.0), 1.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5);   // clamps low
  h.Add(0.5);
  h.Add(9.5);
  h.Add(25);   // clamps high
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
}

TEST(LoggingTest, LevelFilters) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  DN_INFO << "should not crash (filtered)";
  DN_ERROR << "visible (to stderr)";
  SetLogLevel(old);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i, size_t) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, WorkerIdsStayBelowConcurrency) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> by_worker(pool.concurrency());
  pool.ParallelFor(500, [&](size_t, size_t worker) {
    ASSERT_LT(worker, pool.concurrency());
    by_worker[worker].fetch_add(1);
  });
  int total = 0;
  for (const auto& w : by_worker) {
    total += w.load();
  }
  EXPECT_EQ(total, 500);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(64, [&](size_t i, size_t) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPoolTest, SingleIndexRunsInlineOnCaller) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  pool.ParallelFor(1, [&](size_t i, size_t worker) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, EmptyJobIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace dumbnet
