// Tests of the wire runtime (src/wire): the frame codec every socket speaks,
// the incremental FrameDecoder that reassembles frames from arbitrary recv()
// splits, and one end-to-end boot of a real UDS fabric.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/routing/wire_types.h"
#include "src/wire/frame.h"
#include "src/wire/runtime.h"

namespace dumbnet {
namespace wire {
namespace {

// One representative Packet per Payload alternative, every field non-default
// where practical, so a lossless round-trip is actually exercised.
std::vector<Packet> SamplePackets() {
  std::vector<Packet> out;

  DataPayload data;
  data.flow_id = 7;
  data.seq = 9;
  data.ack = 3;
  data.is_ack = true;
  data.bytes = 777;
  data.inner_dst_mac = 0xAABB;
  data.ecn = true;
  out.push_back(MakeDumbNetPacket(0x101, 0x202, {1, 2, 3}, data));

  ProbePayload probe;
  probe.probe_id = 42;
  probe.origin_mac = 0x303;
  probe.forward_path = {4, 5, kPathEndTag};
  out.push_back(MakeDumbNetPacket(0x303, kBroadcastMac, {4, 5}, probe));

  ProbeReplyPayload reply;
  reply.probe_id = 42;
  reply.responder_mac = 0x404;
  reply.reply_path = {6, kPathEndTag};
  reply.controller_mac = 0x505;
  out.push_back(MakeDumbNetPacket(0x404, 0x303, {6}, reply));

  IdReplyPayload id_reply;
  id_reply.probe_id = 43;
  id_reply.switch_uid = 0xDEADBEEF;
  out.push_back(MakeDumbNetPacket(0x505, 0x303, {0}, id_reply));

  PortEventPayload port_ev;
  port_ev.switch_uid = 0xFEED;
  port_ev.port = 3;
  port_ev.up = true;
  port_ev.hops_left = 2;
  port_ev.event_seq = 11;
  port_ev.origin_time = 123456789;
  out.push_back(MakeEthernetPacket(0x606, kBroadcastMac, kEtherTypeDumbNet, port_ev));

  PathRequestPayload path_req;
  path_req.requester_mac = 0x707;
  path_req.dst_mac = 0x808;
  path_req.attempt = 5;
  out.push_back(MakeDumbNetPacket(0x707, 0x111, {7, 8}, path_req));

  PathResponsePayload path_resp;
  path_resp.dst_mac = 0x808;
  path_resp.dst_location = HostLocation{0x808, 0xFACE, 4};
  auto graph = std::make_shared<WirePathGraph>();
  graph->src_uid = 0xFACE;
  graph->dst_uid = 0xCAFE;
  graph->primary = {0xFACE, 0xBEAD, 0xCAFE};
  graph->backup = {0xFACE, 0xCAFE};
  graph->links = {{0xFACE, 1, 0xBEAD, 2}, {0xBEAD, 3, 0xCAFE, 4}};
  path_resp.graph = graph;
  out.push_back(MakeDumbNetPacket(0x111, 0x707, {1}, path_resp));

  BootstrapPayload boot;
  boot.self = HostLocation{0x909, 0xFACE, 5};
  boot.controller_mac = 0x111;
  boot.controller_location = HostLocation{0x111, 0xCAFE, 6};
  boot.path_to_controller = {2, 3, kPathEndTag};
  boot.directory = std::make_shared<std::vector<HostLocation>>(
      std::vector<HostLocation>{{0x909, 0xFACE, 5}, {0x111, 0xCAFE, 6}});
  out.push_back(MakeDumbNetPacket(0x111, 0x909, {2, 3}, boot));

  LinkEventPayload link_ev;
  link_ev.event_id = 0xE11E;
  link_ev.switch_uid = 0xFEED;
  link_ev.port = 7;
  link_ev.up = false;
  link_ev.origin_time = 987654321;
  out.push_back(MakeDumbNetPacket(0x909, 0x101, {9}, link_ev));

  TopologyPatchPayload patch;
  patch.patch_seq = 17;
  patch.removed = std::make_shared<std::vector<WireLink>>(
      std::vector<WireLink>{{0xFACE, 1, 0xBEAD, 2}});
  patch.added = std::make_shared<std::vector<WireLink>>(
      std::vector<WireLink>{{0xFACE, 1, 0xCAFE, 3}, {0xCAFE, 4, 0xBEAD, 2}});
  patch.origin_time = 555;
  out.push_back(MakeDumbNetPacket(0x111, kBroadcastMac, {1, 2}, patch));

  BpduPayload bpdu;
  bpdu.root_id = 0x1234;
  bpdu.cost = 99;
  bpdu.sender_id = 0x5678;
  bpdu.sender_port = 2;
  bpdu.topology_change = true;
  out.push_back(MakeEthernetPacket(0x505, kBroadcastMac, kEtherTypeBpdu, bpdu));

  // Sidecar fields ride on every frame; arm them on the first sample.
  out[0].sent_time = 1234567;
  out[0].pkt_id = 89;
  out[0].provenance.promised = {0xFACE, 0xBEAD};
  out[0].provenance.hops = {{0xFACE, 3, 1}, {0xBEAD, 2, 4}};
  return out;
}

std::string_view BodyOf(const std::string& frame) {
  return std::string_view(frame).substr(kFrameHeaderBytes);
}

TEST(FrameTest, HeaderLayoutIsExact) {
  const std::string frame = EncodeFrame(FrameType::kHeartbeat, "ab");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 2);
  EXPECT_EQ(static_cast<uint8_t>(frame[0]), 0x4E);  // magic lo ("N")
  EXPECT_EQ(static_cast<uint8_t>(frame[1]), 0x44);  // magic hi ("D")
  EXPECT_EQ(static_cast<uint8_t>(frame[2]), kFrameVersion);
  EXPECT_EQ(static_cast<uint8_t>(frame[3]), static_cast<uint8_t>(FrameType::kHeartbeat));
  EXPECT_EQ(static_cast<uint8_t>(frame[4]), 2);  // body length, little-endian
  EXPECT_EQ(static_cast<uint8_t>(frame[5]), 0);
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), "ab");
}

TEST(FrameTest, HelloRoundTrip) {
  HelloBody hello;
  hello.link_index = 12;
  hello.from_switch = true;
  hello.node_index = 3;
  hello.port = 7;
  const std::string frame = EncodeHelloFrame(FrameType::kHello, hello);
  auto decoded = DecodeHelloBody(BodyOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  EXPECT_EQ(decoded.value(), hello);
}

TEST(FrameTest, HelloRejectsTruncationAndTrailingBytes) {
  const std::string frame = EncodeHelloFrame(FrameType::kHelloAck, HelloBody{});
  const std::string body(BodyOf(frame));
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(DecodeHelloBody(std::string_view(body).substr(0, cut)).ok())
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_FALSE(DecodeHelloBody(body + 'x').ok());
}

// Encode -> decode -> re-encode must be byte-identical for every payload kind:
// a field the codec forgets would change the second encoding.
TEST(FrameTest, PacketRoundTripAllPayloadKinds) {
  const std::vector<Packet> samples = SamplePackets();
  ASSERT_EQ(samples.size(), std::variant_size_v<Payload>);
  for (const Packet& pkt : samples) {
    const std::string frame = EncodePacketFrame(pkt);
    auto decoded = DecodePacketBody(BodyOf(frame));
    ASSERT_TRUE(decoded.ok())
        << pkt.Describe() << ": " << decoded.error().ToString();
    EXPECT_EQ(decoded.value().payload.index(), pkt.payload.index());
    EXPECT_EQ(EncodePacketFrame(decoded.value()), frame) << pkt.Describe();
  }
}

TEST(FrameTest, PacketSidecarsSurvive) {
  const Packet pkt = SamplePackets()[0];  // the armed-provenance sample
  auto decoded = DecodePacketBody(BodyOf(EncodePacketFrame(pkt)));
  ASSERT_TRUE(decoded.ok());
  const Packet& got = decoded.value();
  EXPECT_EQ(got.eth.dst_mac, pkt.eth.dst_mac);
  EXPECT_EQ(got.eth.src_mac, pkt.eth.src_mac);
  EXPECT_EQ(got.eth.ether_type, pkt.eth.ether_type);
  EXPECT_EQ(got.tags, pkt.tags);
  EXPECT_EQ(got.sent_time, pkt.sent_time);
  EXPECT_EQ(got.pkt_id, pkt.pkt_id);
  EXPECT_EQ(got.provenance.promised, pkt.provenance.promised);
  ASSERT_EQ(got.provenance.hops.size(), pkt.provenance.hops.size());
  EXPECT_EQ(got.provenance.hops[1].switch_uid, pkt.provenance.hops[1].switch_uid);
  EXPECT_EQ(got.provenance.hops[1].ingress, pkt.provenance.hops[1].ingress);
  EXPECT_EQ(got.provenance.hops[1].egress, pkt.provenance.hops[1].egress);
  const DataPayload* data = got.As<DataPayload>();
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->flow_id, 7u);
  EXPECT_TRUE(data->ecn);
}

TEST(FrameTest, PacketRejectsEveryTruncation) {
  for (const Packet& pkt : SamplePackets()) {
    const std::string frame = EncodePacketFrame(pkt);
    const std::string body(BodyOf(frame));
    for (size_t cut = 0; cut < body.size(); ++cut) {
      EXPECT_FALSE(DecodePacketBody(std::string_view(body).substr(0, cut)).ok())
          << pkt.Describe() << " decoded from a " << cut << "-byte prefix";
    }
  }
}

TEST(FrameTest, PacketRejectsTrailingBytes) {
  const std::string body(BodyOf(EncodePacketFrame(SamplePackets()[0])));
  EXPECT_FALSE(DecodePacketBody(body + '\0').ok());
}

TEST(FrameTest, PacketRejectsUnknownPayloadKind) {
  // Hand-build a body whose payload kind byte is past the variant's last index.
  ByteWriter w;
  w.U64(1);                  // dst mac
  w.U64(2);                  // src mac
  w.U16(kEtherTypeDumbNet);  // ether type
  w.U16(0);                  // no tags
  w.I64(0);                  // sent_time
  w.U64(0);                  // pkt_id
  w.U32(0);                  // provenance promised
  w.U32(0);                  // provenance hops
  w.U8(static_cast<uint8_t>(std::variant_size_v<Payload>));
  EXPECT_FALSE(DecodePacketBody(w.Take()).ok());
}

// A corrupt count field must be rejected before it allocates, not after.
TEST(FrameTest, PacketRejectsAbsurdCounts) {
  ByteWriter w;
  w.U64(1);
  w.U64(2);
  w.U16(kEtherTypeDumbNet);
  w.U16(0xFFFF);  // claims 65535 tag bytes; nothing follows
  EXPECT_FALSE(DecodePacketBody(w.Take()).ok());
}

// ---------------------------------------------------------------------------------
// FrameDecoder: reassembly and poisoning.

std::string ThreeFrameStream() {
  std::string stream = EncodeHelloFrame(FrameType::kHello, HelloBody{5, true, 1, 2});
  stream += EncodeFrame(FrameType::kHeartbeat, "");
  stream += EncodePacketFrame(SamplePackets()[0]);
  return stream;
}

void ExpectThreeFrames(const std::vector<Frame>& frames) {
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[1].type, FrameType::kHeartbeat);
  EXPECT_TRUE(frames[1].body.empty());
  EXPECT_EQ(frames[2].type, FrameType::kPacket);
  EXPECT_TRUE(DecodePacketBody(frames[2].body).ok());
}

TEST(FrameDecoderTest, BackToBackFramesInOneFeed) {
  const std::string stream = ThreeFrameStream();
  FrameDecoder dec;
  dec.Feed(stream.data(), stream.size());
  std::vector<Frame> frames;
  Frame f;
  while (dec.Next(&f) == FrameDecoder::Status::kFrame) {
    frames.push_back(f);
  }
  EXPECT_FALSE(dec.failed());
  EXPECT_EQ(dec.buffered_bytes(), 0u);
  ExpectThreeFrames(frames);
}

// However recv() splits the stream — byte-by-byte up to 7-byte chunks, none of
// which align with the 8-byte header — the same frames must come out.
TEST(FrameDecoderTest, ReassemblesAcrossArbitrarySplits) {
  const std::string stream = ThreeFrameStream();
  for (size_t chunk = 1; chunk <= 7; ++chunk) {
    FrameDecoder dec;
    std::vector<Frame> frames;
    for (size_t off = 0; off < stream.size(); off += chunk) {
      dec.Feed(stream.data() + off, std::min(chunk, stream.size() - off));
      Frame f;
      while (dec.Next(&f) == FrameDecoder::Status::kFrame) {
        frames.push_back(f);
      }
      EXPECT_FALSE(dec.failed());
    }
    ExpectThreeFrames(frames);
  }
}

TEST(FrameDecoderTest, NeedMoreUntilBodyComplete) {
  const std::string frame = EncodePacketFrame(SamplePackets()[0]);
  FrameDecoder dec;
  Frame f;
  // Every strict prefix (header included) yields kNeedMore, never a frame.
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.Feed(frame.data() + i, 1);
    EXPECT_EQ(dec.Next(&f), FrameDecoder::Status::kNeedMore) << "at byte " << i;
  }
  dec.Feed(frame.data() + frame.size() - 1, 1);
  EXPECT_EQ(dec.Next(&f), FrameDecoder::Status::kFrame);
}

TEST(FrameDecoderTest, PoisonsOnHeaderCorruption) {
  struct Case {
    const char* name;
    std::string bytes;
  };
  std::string bad_magic = EncodeFrame(FrameType::kHeartbeat, "");
  bad_magic[0] = 'X';
  std::string bad_version = EncodeFrame(FrameType::kHeartbeat, "");
  bad_version[2] = static_cast<char>(kFrameVersion + 1);
  std::string bad_type = EncodeFrame(FrameType::kHeartbeat, "");
  bad_type[3] = 0x7F;
  ByteWriter oversized;
  oversized.U16(kFrameMagic);
  oversized.U8(kFrameVersion);
  oversized.U8(static_cast<uint8_t>(FrameType::kPacket));
  oversized.U32(kMaxFrameBody + 1);
  const Case cases[] = {{"bad magic", bad_magic},
                        {"bad version", bad_version},
                        {"unknown type", bad_type},
                        {"oversized body", oversized.Take()}};
  for (const Case& c : cases) {
    FrameDecoder dec;
    dec.Feed(c.bytes.data(), c.bytes.size());
    Frame f;
    EXPECT_EQ(dec.Next(&f), FrameDecoder::Status::kError) << c.name;
    EXPECT_TRUE(dec.failed()) << c.name;
    // Poisoning is permanent: a subsequent valid frame must not resurrect it.
    const std::string good = EncodeFrame(FrameType::kHeartbeat, "");
    dec.Feed(good.data(), good.size());
    EXPECT_EQ(dec.Next(&f), FrameDecoder::Status::kError) << c.name;
  }
}

TEST(FrameDecoderTest, CompactsLongLivedStreams) {
  // Enough traffic to cross the internal compaction threshold several times;
  // every frame must still come out intact and buffered_bytes return to zero.
  const std::string heartbeat = EncodeFrame(FrameType::kHeartbeat, "");
  FrameDecoder dec;
  uint64_t got = 0;
  for (int i = 0; i < 4096; ++i) {
    dec.Feed(heartbeat.data(), heartbeat.size());
    Frame f;
    while (dec.Next(&f) == FrameDecoder::Status::kFrame) {
      EXPECT_EQ(f.type, FrameType::kHeartbeat);
      ++got;
    }
  }
  EXPECT_EQ(got, 4096u);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
  EXPECT_FALSE(dec.failed());
}

// ---------------------------------------------------------------------------------
// End to end: a real 2-switch fabric over Unix sockets — threads, epoll, the
// works — must discover itself, bootstrap every host, and serve pings with
// clean path provenance.

TEST(WireFabricTest, UdsFabricBootsAndServesPings) {
  Topology topo;
  const uint32_t s0 = topo.AddSwitch(4);
  const uint32_t s1 = topo.AddSwitch(4);
  ASSERT_TRUE(topo.ConnectSwitches(s0, 1, s1, 1).ok());
  ASSERT_TRUE(topo.AttachHost(topo.AddHost(), s0, 2).ok());
  ASSERT_TRUE(topo.AttachHost(topo.AddHost(), s1, 2).ok());

  WireFabricOptions fopts;
  fopts.node.disc_config.max_ports = 4;
  fopts.node.disc_config.probe_timeout = Ms(50);
  fopts.discovery_timeout = Sec(30);
  WireFabric fabric(topo, fopts);
  Status status = fabric.Start();
  ASSERT_TRUE(status.ok()) << status.ToString();
  status = fabric.RunDiscovery();
  ASSERT_TRUE(status.ok()) << status.ToString();

  uint64_t flow = 1;
  for (int i = 0; i < 3; ++i) {
    PingOutcome out = fabric.Ping(0, 1, flow++, Sec(5));
    EXPECT_TRUE(out.ok) << "ping " << i << ": "
                        << (out.timed_out ? "timed out" : out.error);
    if (out.ok) {
      EXPECT_GT(out.rtt_ns, 0);
    }
  }
  const HostAgentStats src = fabric.HostStats(0);
  const HostAgentStats dst = fabric.HostStats(1);
  EXPECT_GT(src.data_sent, 0u);
  EXPECT_GT(dst.data_received, 0u);
  EXPECT_EQ(src.path_divergence, 0u);
  EXPECT_EQ(dst.path_divergence, 0u);
  fabric.Shutdown();
}

}  // namespace
}  // namespace wire
}  // namespace dumbnet
