// Tests of the fluid (max-min fair) flow simulator.
#include "src/fluid/fluid_sim.h"

#include <gtest/gtest.h>

#include "src/topo/generators.h"

namespace dumbnet {
namespace {

// H0 - S0 - S1 - H1 (10 Gbps everywhere) plus H2 on S0, H3 on S1.
struct FluidFixture {
  FluidFixture() {
    topo.AddSwitch(8);
    topo.AddSwitch(8);
    topo.ConnectSwitches(0, 1, 1, 1).value();
    for (int i = 0; i < 4; ++i) {
      uint32_t h = topo.AddHost();
      topo.AttachHost(h, i % 2 == 0 ? 0 : 1, static_cast<PortNum>(4 + i)).value();
    }
    fluid = std::make_unique<FluidSimulator>(&sim, &topo);
  }
  Topology topo;
  Simulator sim;
  std::unique_ptr<FluidSimulator> fluid;
};

constexpr double kLinkBps = 10e9 / 8.0;  // 10 Gbps in bytes/sec

TEST(FluidTest, SingleFlowGetsFullBottleneck) {
  FluidFixture f;
  TimeNs done_at = 0;
  auto id = f.fluid->StartFlow(0, 1, kLinkBps, {0, 1},
                               [&](uint64_t, TimeNs t) { done_at = t; });
  ASSERT_TRUE(id.ok());
  EXPECT_NEAR(f.fluid->FlowRateBps(id.value()), kLinkBps, 1.0);
  f.sim.Run();
  // One link-second of bytes at full rate: finishes at ~1 s.
  EXPECT_NEAR(ToSec(done_at), 1.0, 0.01);
}

TEST(FluidTest, TwoFlowsShareFairly) {
  FluidFixture f;
  auto a = f.fluid->StartFlow(0, 1, kOpenEndedBytes, {0, 1});
  auto b = f.fluid->StartFlow(2, 3, kOpenEndedBytes, {0, 1});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(f.fluid->FlowRateBps(a.value()), kLinkBps / 2, 1.0);
  EXPECT_NEAR(f.fluid->FlowRateBps(b.value()), kLinkBps / 2, 1.0);
  // The shared inter-switch link is saturated.
  EXPECT_NEAR(f.fluid->LinkUtilization(f.topo.LinkAtPort(0, 1), 0), 1.0, 1e-9);
}

TEST(FluidTest, CompletionFreesBandwidth) {
  FluidFixture f;
  auto a = f.fluid->StartFlow(0, 1, kLinkBps / 4, {0, 1});  // short flow
  auto b = f.fluid->StartFlow(2, 3, kOpenEndedBytes, {0, 1});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  f.sim.RunUntil(Sec(2));
  // After `a` finishes, `b` gets the whole link back.
  EXPECT_NEAR(f.fluid->FlowRateBps(b.value()), kLinkBps, 1.0);
  EXPECT_EQ(f.fluid->active_flows(), 1u);
}

TEST(FluidTest, ReverseDirectionsDoNotContend) {
  FluidFixture f;
  auto a = f.fluid->StartFlow(0, 1, kOpenEndedBytes, {0, 1});
  auto b = f.fluid->StartFlow(3, 2, kOpenEndedBytes, {1, 0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Full-duplex link: both directions run at line rate.
  EXPECT_NEAR(f.fluid->FlowRateBps(a.value()), kLinkBps, 1.0);
  EXPECT_NEAR(f.fluid->FlowRateBps(b.value()), kLinkBps, 1.0);
}

TEST(FluidTest, MaxMinRespectsMultiBottleneck) {
  // Leaf-spine with two spines: 8 hosts on leaf0 to 8 on leaf1 over 2 uplinks.
  LeafSpineConfig config;
  config.num_spine = 2;
  config.num_leaf = 2;
  config.hosts_per_leaf = 8;
  auto ls = MakeLeafSpine(config);
  ASSERT_TRUE(ls.ok());
  Simulator sim;
  Topology topo = std::move(ls.value().topo);
  FluidSimulator fluid(&sim, &topo);
  uint32_t leaf0 = ls.value().leaves[0];
  uint32_t leaf1 = ls.value().leaves[1];
  uint32_t spine0 = ls.value().spines[0];

  // All 8 flows on spine0's path: each gets 1/8 of one 10G uplink.
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < 8; ++i) {
    auto id = fluid.StartFlow(ls.value().hosts[0][i], ls.value().hosts[1][i],
                              kOpenEndedBytes, {leaf0, spine0, leaf1});
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (uint64_t id : ids) {
    EXPECT_NEAR(fluid.FlowRateBps(id), kLinkBps / 8, 1.0);
  }
  // Move half to spine1: everyone doubles.
  uint32_t spine1 = ls.value().spines[1];
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(fluid.RepathFlow(ids[i], {leaf0, spine1, leaf1}).ok());
  }
  for (uint64_t id : ids) {
    EXPECT_NEAR(fluid.FlowRateBps(id), kLinkBps / 4, 1.0);
  }
}

TEST(FluidTest, LinkFailureStallsFlows) {
  FluidFixture f;
  auto a = f.fluid->StartFlow(0, 1, kOpenEndedBytes, {0, 1});
  ASSERT_TRUE(a.ok());
  f.sim.RunUntil(Ms(100));
  f.topo.SetLinkUp(f.topo.LinkAtPort(0, 1), false);
  EXPECT_EQ(f.fluid->FlowRateBps(a.value()), 0.0);
}

TEST(FluidTest, RejectsBadPaths) {
  FluidFixture f;
  EXPECT_FALSE(f.fluid->StartFlow(0, 1, 100, {}).ok());
  EXPECT_FALSE(f.fluid->StartFlow(0, 1, 100, {1, 0}).ok());  // wrong endpoints
  EXPECT_FALSE(f.fluid->StartFlow(0, 3, 100, {0, 0}).ok());
}

TEST(FluidTest, BytesDeliveredAccumulates) {
  FluidFixture f;
  f.fluid->StartFlow(0, 1, kLinkBps / 2, {0, 1}).value();
  f.sim.Run();
  EXPECT_NEAR(f.fluid->BytesDelivered(1), kLinkBps / 2, kLinkBps / 1000);
}

}  // namespace
}  // namespace dumbnet
