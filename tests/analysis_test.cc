// Tests for the correctness-tooling layer (src/analysis): audit macros, the
// invariant catalog, the InvariantAuditor + simulator hook, and the static
// fabric checker behind tools/dumbnet-check. Each registered invariant is
// exercised against a deliberately corrupted fabric state — truncated tag
// stacks, dangling WireLinks, stale cache entries — and must flag it.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/audit.h"
#include "src/analysis/bench_compare.h"
#include "src/analysis/fabric_check.h"
#include "src/analysis/invariant_auditor.h"
#include "src/analysis/invariants.h"
#include "src/topo/generators.h"
#include "src/topo/serialize.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

// A square S0-S1-S2-S3-S0 with hosts on S0 and S2: two switch-disjoint routes
// between the hosts, so every corruption below has a well-defined clean baseline.
Topology SquareTopo() {
  Topology t;
  for (int i = 0; i < 4; ++i) {
    t.AddSwitch(4);
  }
  t.AddHost();
  t.AddHost();
  EXPECT_TRUE(t.ConnectSwitches(0, 1, 1, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(1, 2, 2, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(2, 2, 3, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(3, 2, 0, 2).ok());
  EXPECT_TRUE(t.AttachHost(0, 0, 3).ok());
  EXPECT_TRUE(t.AttachHost(1, 2, 3).ok());
  return t;
}

uint64_t Uid(const Topology& t, uint32_t sw) { return t.switch_at(sw).uid; }

// The (sound) path graph a controller would hand H0 for reaching H1.
WirePathGraph SquarePathGraph(const Topology& t) {
  WirePathGraph g;
  g.src_uid = Uid(t, 0);
  g.dst_uid = Uid(t, 2);
  g.primary = {Uid(t, 0), Uid(t, 1), Uid(t, 2)};
  g.backup = {Uid(t, 0), Uid(t, 3), Uid(t, 2)};
  g.links = {
      WireLink{Uid(t, 0), 1, Uid(t, 1), 1},
      WireLink{Uid(t, 1), 2, Uid(t, 2), 1},
      WireLink{Uid(t, 2), 2, Uid(t, 3), 1},
      WireLink{Uid(t, 3), 2, Uid(t, 0), 2},
  };
  return g;
}

bool HasFinding(const std::vector<CheckFinding>& findings, const std::string& check) {
  for (const CheckFinding& f : findings) {
    if (f.check == check) {
      return true;
    }
  }
  return false;
}

// --- Tag-stack invariants ----------------------------------------------------------

TEST(TagStackAuditTest, WellFormedStacksPass) {
  EXPECT_TRUE(AuditTagStack({1, 2, 5, kPathEndTag}, /*expect_terminator=*/true).ok());
  EXPECT_TRUE(AuditTagStack({1, 2, 5}, /*expect_terminator=*/false).ok());
  EXPECT_TRUE(AuditTagStack({kIdQueryTag, 3, kPathEndTag}, true).ok());
}

TEST(TagStackAuditTest, TruncatedStackFlagged) {
  // ø in the middle: the path was truncated in flight.
  auto s = AuditTagStack({1, kPathEndTag, 5, kPathEndTag}, true);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kMalformed);
  // Missing terminator entirely.
  EXPECT_FALSE(AuditTagStack({1, 2, 5}, true).ok());
  EXPECT_FALSE(AuditTagStack({}, true).ok());
}

TEST(TagStackAuditTest, BudgetAndRangeEnforced) {
  TagList deep(audit::kMaxTagStackDepth, 1);
  deep.push_back(kPathEndTag);
  auto s = AuditTagStack(deep, true);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kExhausted);
  // 255 is ø; 0 is the ID query. Nothing else above kMaxPorts exists, so the
  // range check can only trip via a corrupted PortNum — simulate one directly.
  EXPECT_TRUE(AuditTagStack({kMaxPorts}, false).ok());
}

// --- Path-graph invariants ---------------------------------------------------------

TEST(WirePathGraphAuditTest, SoundGraphPasses) {
  Topology t = SquareTopo();
  EXPECT_TRUE(AuditWirePathGraph(SquarePathGraph(t)).ok());
}

TEST(WirePathGraphAuditTest, EndpointMismatchFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  g.primary.back() = Uid(t, 3);  // ends at the wrong switch
  EXPECT_FALSE(AuditWirePathGraph(g).ok());
}

TEST(WirePathGraphAuditTest, DanglingLinkFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  // A link between two switches nothing else references: disconnected from src.
  g.links.push_back(WireLink{991188, 1, 991189, 1});
  auto s = AuditWirePathGraph(g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().message().find("dangling"), std::string::npos);
}

TEST(WirePathGraphAuditTest, MissingHopLinkFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  g.links.erase(g.links.begin());  // primary hop u0->u1 now has no link
  EXPECT_FALSE(AuditWirePathGraph(g).ok());
}

TEST(WirePathGraphAuditTest, PortConflictFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  // Second link claims S0 port 1, already used by the first.
  g.links.push_back(WireLink{Uid(t, 0), 1, Uid(t, 2), 4});
  auto s = AuditWirePathGraph(g);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kAlreadyExists);
}

TEST(PathGraphAuditTest, BuiltGraphsSatisfyInvariants) {
  Topology t = SquareTopo();
  SwitchGraph graph(t);
  auto pg = BuildPathGraph(t, graph, 0, 2, PathGraphParams{});
  ASSERT_TRUE(pg.ok());
  EXPECT_TRUE(AuditPathGraph(t, pg.value()).ok());
}

TEST(PathGraphAuditTest, LoopAndDownLinkFlagged) {
  Topology t = SquareTopo();
  SwitchGraph graph(t);
  auto pg = BuildPathGraph(t, graph, 0, 2, PathGraphParams{});
  ASSERT_TRUE(pg.ok());
  PathGraph corrupted = pg.value();
  corrupted.primary = {0, 1, 0, 1, 2};  // routing loop
  EXPECT_FALSE(AuditPathGraph(t, corrupted).ok());

  // A link that has since failed must not stay in a (fresh) path graph.
  t.SetLinkUp(t.LinkAtPort(0, 1), false);
  EXPECT_FALSE(AuditPathGraph(t, pg.value()).ok());
}

// --- Cache coherence ---------------------------------------------------------------

TEST(CacheCoherenceTest, RouteOverUnknownSwitchFlagged) {
  Topology t = SquareTopo();
  TopoCache cache;
  PathTable table(1);
  cache.UpsertHost(HostLocation{99, Uid(t, 0), 3});
  PathTableEntry entry;
  entry.dst = HostLocation{99, Uid(t, 0), 3};
  CachedRoute route;
  route.uid_path = {Uid(t, 0), 424242};  // switch the cache never heard of
  route.tags = {1, 3};
  entry.paths.push_back(route);
  table.Install(99, entry);
  auto s = AuditCacheCoherence(cache, table);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kNotFound);
}

TEST(CacheCoherenceTest, StaleDestinationFlagged) {
  Topology t = SquareTopo();
  TopoCache cache;
  PathTable table(1);
  // Cache thinks the host moved to S1; the table still has the S0 location.
  cache.UpsertHost(HostLocation{99, Uid(t, 1), 2});
  PathTableEntry entry;
  entry.dst = HostLocation{99, Uid(t, 0), 3};
  table.Install(99, entry);
  auto s = AuditCacheCoherence(cache, table);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kMalformed);
}

// --- Controller database vs ground truth -------------------------------------------

TEST(TopoDbTruthAuditTest, StaleUpLinkFlaggedOnlyWhenStrict) {
  Topology truth = SquareTopo();
  TopoDb db;
  ASSERT_TRUE(db.AddLink(WireLink{Uid(truth, 0), 1, Uid(truth, 1), 1}).ok());
  EXPECT_TRUE(AuditTopoDbAgainstTruth(db, truth).ok());

  // The fabric link dies but the database never hears about it.
  truth.SetLinkUp(truth.LinkAtPort(0, 1), false);
  EXPECT_FALSE(AuditTopoDbAgainstTruth(db, truth, /*require_fresh_links=*/true).ok());
  // The structural variant tolerates in-flight staleness…
  EXPECT_TRUE(AuditTopoDbAgainstTruth(db, truth, /*require_fresh_links=*/false).ok());
  // …and once the notification lands, strict passes again.
  db.SetLinkState(Uid(truth, 0), 1, false);
  EXPECT_TRUE(AuditTopoDbAgainstTruth(db, truth, /*require_fresh_links=*/true).ok());
}

TEST(TopoDbTruthAuditTest, PhantomSwitchAndMiswiredLinkFlagged) {
  Topology truth = SquareTopo();
  {
    TopoDb db;
    db.EnsureSwitch(778899);  // never existed
    EXPECT_FALSE(AuditTopoDbAgainstTruth(db, truth).ok());
  }
  {
    TopoDb db;
    // Fabric wires S0 port 1 to S1 port 1; the database believes port 2.
    ASSERT_TRUE(db.AddLink(WireLink{Uid(truth, 0), 1, Uid(truth, 1), 2}).ok());
    EXPECT_FALSE(AuditTopoDbAgainstTruth(db, truth).ok());
  }
}

TEST(TopoDbTruthAuditTest, MislocatedHostFlagged) {
  Topology truth = SquareTopo();
  TopoDb db;
  const uint64_t mac = truth.host_at(0).mac == 0 ? 1 : truth.host_at(0).mac;
  db.UpsertHost(HostLocation{mac, Uid(truth, 1), 3});  // actually on S0 port 3
  EXPECT_FALSE(AuditTopoDbAgainstTruth(db, truth).ok());
}

// --- InvariantAuditor + simulator hook ---------------------------------------------

TEST(InvariantAuditorTest, RunsCatalogAndRecordsViolations) {
  InvariantAuditor auditor;
  auditor.Register("ok", [] { return Status::Ok(); });
  auditor.Register("bad", [] {
    return Status(Error(ErrorCode::kInternal, "seeded failure"));
  });
  auto found = auditor.RunAll();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].invariant, "bad");
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(auditor.RunOne("ok").ok());
  EXPECT_FALSE(auditor.RunOne("bad").ok());
  EXPECT_EQ(auditor.RunOne("missing").error().code(), ErrorCode::kNotFound);
}

TEST(InvariantAuditorTest, AttachedAuditorRunsEveryNEvents) {
  Simulator sim;
  InvariantAuditor auditor;
  auditor.Register("ok", [] { return Status::Ok(); });
  auditor.AttachTo(&sim, 10);
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(auditor.runs(), 10u);
  EXPECT_TRUE(auditor.clean());
}

#ifdef DUMBNET_AUDIT_ENABLED
TEST(AuditMacroTest, SwitchFlagsUnterminatedTagStack) {
  audit::ResetCounters();
  Topology t = SquareTopo();
  TestFabric fabric(std::move(t));
  Packet pkt;
  pkt.eth.ether_type = kEtherTypeDumbNet;
  pkt.tags = {1, 2};  // no ø: a truncated header
  fabric.dumb_switch(0).HandlePacket(pkt, 3);
  fabric.Run();
  EXPECT_GE(audit::Counters().failures, 1u);
  EXPECT_NE(audit::LastFailure().find("terminated"), std::string::npos);
  audit::ResetCounters();
}

TEST(AuditMacroTest, CleanTrafficTripsNothing) {
  audit::ResetCounters();
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);
  auto& auditor = fabric.EnableAuditing(16);
  ASSERT_TRUE(fabric.agent(0).Send(fabric.agent(6).mac(), 1, DataPayload{}).ok());
  ASSERT_TRUE(fabric.agent(3).Send(fabric.agent(12).mac(), 2, DataPayload{}).ok());
  fabric.Run();
  EXPECT_GT(auditor.runs(), 0u);
  EXPECT_TRUE(auditor.clean());
  EXPECT_EQ(audit::Counters().failures, 0u);
  // Quiescent fabric: the strict database check must hold too.
  EXPECT_TRUE(AuditTopoDbAgainstTruth(fabric.controller().db(), fabric.topo()).ok());
  audit::ResetCounters();
}
#endif  // DUMBNET_AUDIT_ENABLED

// --- Path-graph serialization ------------------------------------------------------

TEST(PathGraphSerializeTest, RoundTrips) {
  Topology t = SquareTopo();
  std::vector<WirePathGraph> graphs = {SquarePathGraph(t)};
  graphs[0].backup.clear();  // exercise the optional-backup form
  std::string text = SerializeWirePathGraphs(graphs);
  auto parsed = ParseWirePathGraphs(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].src_uid, graphs[0].src_uid);
  EXPECT_EQ(parsed.value()[0].primary, graphs[0].primary);
  EXPECT_TRUE(parsed.value()[0].backup.empty());
  EXPECT_EQ(parsed.value()[0].links, graphs[0].links);
}

TEST(PathGraphSerializeTest, ParseErrorsCarryLineNumbers) {
  EXPECT_FALSE(ParseWirePathGraphs("primary 1 2\n").ok());     // outside a block
  EXPECT_FALSE(ParseWirePathGraphs("pathgraph 1 2\n").ok());   // unterminated
  EXPECT_FALSE(ParseWirePathGraphs("pathgraph 1 2\nplink 1 999 2 1\nend\n").ok());
}

// --- Static fabric checker ---------------------------------------------------------

TEST(FabricCheckTest, CleanFabricHasNoFindings) {
  Topology t = SquareTopo();
  EXPECT_TRUE(CheckFabric(t, {SquarePathGraph(t)}, {}).empty());
}

TEST(FabricCheckTest, DownUplinkAndUnreachableHostFlagged) {
  Topology t = SquareTopo();
  t.SetLinkUp(t.host_at(1).link, false);
  EXPECT_TRUE(HasFinding(CheckTopology(t), "host-uplink-down"));

  Topology t2 = SquareTopo();
  // Cut both S0-side links: H0's switch is isolated from H1's.
  t2.SetLinkUp(t2.LinkAtPort(0, 1), false);
  t2.SetLinkUp(t2.LinkAtPort(0, 2), false);
  EXPECT_TRUE(HasFinding(CheckTopology(t2), "host-unreachable"));
}

TEST(FabricCheckTest, PrimaryLoopFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  g.primary = {Uid(t, 0), Uid(t, 1), Uid(t, 0), Uid(t, 1), Uid(t, 2)};
  EXPECT_TRUE(HasFinding(CheckPathGraphs(t, {g}, {}), "primary-loop"));
}

TEST(FabricCheckTest, LinkConflictFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  g.links[0].port_b = 3;  // fabric wires S1's side on port 1, not 3
  EXPECT_TRUE(HasFinding(CheckPathGraphs(t, {g}, {}), "link-conflict"));
}

TEST(FabricCheckTest, BackupSharingFailedPrimaryLinkFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  g.backup = g.primary;  // degenerate backup riding the same hops
  t.SetLinkUp(t.LinkAtPort(0, 1), false);
  auto findings = CheckPathGraphs(t, {g}, {});
  EXPECT_TRUE(HasFinding(findings, "primary-on-failed-link"));
  EXPECT_TRUE(HasFinding(findings, "backup-shares-failed-link"));
}

TEST(FabricCheckTest, TagBudgetFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  FabricCheckOptions opts;
  opts.max_tag_depth = 3;  // primary needs 3 hops + ø = 4 header bytes
  EXPECT_TRUE(HasFinding(CheckPathGraphs(t, {g}, opts), "tag-budget-exceeded"));
}

// --- The CLI driver: every seeded corruption exits non-zero ------------------------

struct CliCase {
  const char* name;
  const char* expected_check;
  void (*corrupt)(Topology& topo, std::vector<WirePathGraph>& graphs);
};

TEST(DumbnetCheckCliTest, DetectsEverySeededCorruption) {
  const CliCase cases[] = {
      {"uplink_down", "host-uplink-down",
       [](Topology& topo, std::vector<WirePathGraph>&) {
         topo.SetLinkUp(topo.host_at(1).link, false);
       }},
      {"primary_loop", "primary-loop",
       [](Topology& topo, std::vector<WirePathGraph>& graphs) {
         graphs[0].primary = {Uid(topo, 0), Uid(topo, 1), Uid(topo, 0),
                              Uid(topo, 1), Uid(topo, 2)};
       }},
      {"dangling_link", "link-conflict",
       [](Topology&, std::vector<WirePathGraph>& graphs) {
         graphs[0].links.push_back(WireLink{991188, 1, 991189, 1});
       }},
      {"backup_shares_failed", "backup-shares-failed-link",
       [](Topology& topo, std::vector<WirePathGraph>& graphs) {
         graphs[0].backup = graphs[0].primary;
         topo.SetLinkUp(topo.LinkAtPort(0, 1), false);
       }},
  };
  for (const CliCase& c : cases) {
    SCOPED_TRACE(c.name);
    Topology topo = SquareTopo();
    std::vector<WirePathGraph> graphs = {SquarePathGraph(topo)};
    c.corrupt(topo, graphs);

    const std::string dir = ::testing::TempDir();
    const std::string topo_path = dir + "/" + c.name + ".topo";
    const std::string pg_path = dir + "/" + c.name + ".pg";
    ASSERT_TRUE(SaveTopology(topo, topo_path).ok());
    ASSERT_TRUE(SaveWirePathGraphs(graphs, pg_path).ok());

    std::ostringstream out;
    EXPECT_EQ(RunDumbnetCheck(topo_path, {pg_path}, {}, out), 1);
    EXPECT_NE(out.str().find(c.expected_check), std::string::npos) << out.str();
  }
}

TEST(DumbnetCheckCliTest, CleanFabricExitsZero) {
  Topology topo = SquareTopo();
  const std::string dir = ::testing::TempDir();
  const std::string topo_path = dir + "/clean.topo";
  const std::string pg_path = dir + "/clean.pg";
  ASSERT_TRUE(SaveTopology(topo, topo_path).ok());
  ASSERT_TRUE(SaveWirePathGraphs({SquarePathGraph(topo)}, pg_path).ok());
  std::ostringstream out;
  EXPECT_EQ(RunDumbnetCheck(topo_path, {pg_path}, {}, out), 0);
}

TEST(DumbnetCheckCliTest, MissingFilesExitTwo) {
  std::ostringstream out;
  EXPECT_EQ(RunDumbnetCheck("/nonexistent/fabric.topo", {}, {}, out), 2);
  Topology topo = SquareTopo();
  const std::string topo_path = ::testing::TempDir() + "/ok.topo";
  ASSERT_TRUE(SaveTopology(topo, topo_path).ok());
  EXPECT_EQ(RunDumbnetCheck(topo_path, {"/nonexistent/graphs.pg"}, {}, out), 2);
}

// ---------------------------------------------------------------------------
// Benchmark regression gate (bench_compare).
// ---------------------------------------------------------------------------

TEST(BenchCompareTest, ParsesReporterOutput) {
  const std::string json = R"([
  {"bench": "perf_core", "metric": "events_per_sec", "value": 1.25e+06, "unit": "events/s", "params": {"events": "150000", "window": "512"}},
  {"bench": "perf_core", "metric": "bring_up_wall", "value": 0.25, "unit": "s", "params": {}}
])";
  auto rows = ParseBenchJson(json);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0].bench, "perf_core");
  EXPECT_EQ(rows.value()[0].metric, "events_per_sec");
  EXPECT_DOUBLE_EQ(rows.value()[0].value, 1.25e6);
  EXPECT_EQ(rows.value()[0].unit, "events/s");
  ASSERT_EQ(rows.value()[0].params.size(), 2u);
  EXPECT_EQ(rows.value()[0].params[0],
            (std::pair<std::string, std::string>{"events", "150000"}));
  EXPECT_DOUBLE_EQ(rows.value()[1].value, 0.25);
  EXPECT_TRUE(rows.value()[1].params.empty());
}

TEST(BenchCompareTest, RejectsMalformedJson) {
  EXPECT_FALSE(ParseBenchJson("").ok());
  EXPECT_FALSE(ParseBenchJson("{}").ok());
  EXPECT_FALSE(ParseBenchJson("[{\"bench\": }]").ok());
  EXPECT_FALSE(ParseBenchJson("[{\"bench\": \"x\"").ok());
  EXPECT_TRUE(ParseBenchJson("[]").ok());
}

BenchRow MakeRow(const std::string& metric, double value, const std::string& unit) {
  BenchRow row;
  row.bench = "perf_core";
  row.metric = metric;
  row.value = value;
  row.unit = unit;
  return row;
}

TEST(BenchCompareTest, DirectionFollowsUnit) {
  // Rate dropped 50%: regression.
  auto f1 = CompareBenchRows({MakeRow("rate", 100, "graphs/s")},
                             {MakeRow("rate", 50, "graphs/s")}, 0.20);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(f1[0].check, "bench-regression");
  // Rate rose: fine.
  EXPECT_TRUE(CompareBenchRows({MakeRow("rate", 100, "graphs/s")},
                               {MakeRow("rate", 200, "graphs/s")}, 0.20)
                  .empty());
  // Time grew 50%: regression.
  EXPECT_EQ(CompareBenchRows({MakeRow("wall", 1.0, "s")},
                             {MakeRow("wall", 1.5, "s")}, 0.20)
                .size(),
            1u);
  // Time shrank: fine.
  EXPECT_TRUE(CompareBenchRows({MakeRow("wall", 1.0, "s")},
                               {MakeRow("wall", 0.5, "s")}, 0.20)
                  .empty());
}

TEST(BenchCompareTest, ToleranceIsRespected) {
  // 15% worse under a 20% tolerance: no finding.
  EXPECT_TRUE(CompareBenchRows({MakeRow("rate", 100, "graphs/s")},
                               {MakeRow("rate", 85, "graphs/s")}, 0.20)
                  .empty());
  // Same at 10% tolerance: finding.
  EXPECT_EQ(CompareBenchRows({MakeRow("rate", 100, "graphs/s")},
                             {MakeRow("rate", 85, "graphs/s")}, 0.10)
                .size(),
            1u);
}

TEST(BenchCompareTest, MissingAndParamMismatchedRowsAreFindings) {
  BenchRow base = MakeRow("rate", 100, "graphs/s");
  base.params = {{"topology", "cube8"}};
  // Same metric but different params: not a match.
  BenchRow other = MakeRow("rate", 100, "graphs/s");
  other.params = {{"topology", "cube10"}};
  auto findings = CompareBenchRows({base}, {other}, 0.20);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "bench-missing");
  // Params in a different order: still a match.
  BenchRow base2 = MakeRow("rate", 100, "graphs/s");
  base2.params = {{"a", "1"}, {"b", "2"}};
  BenchRow cur2 = MakeRow("rate", 100, "graphs/s");
  cur2.params = {{"b", "2"}, {"a", "1"}};
  EXPECT_TRUE(CompareBenchRows({base2}, {cur2}, 0.20).empty());
  // Extra rows in the current run are not findings.
  EXPECT_TRUE(CompareBenchRows({base}, {base, MakeRow("new_metric", 5, "ratio")}, 0.20)
                  .empty());
}

// ---------------------------------------------------------------------------
// Semantic path-graph verifier (Section 4.3 / Algorithm 1).
// ---------------------------------------------------------------------------

TEST(VerifyPathGraphTest, SoundGraphPasses) {
  Topology t = SquareTopo();
  auto findings = VerifyPathGraphSemantics(t, {SquarePathGraph(t)});
  EXPECT_TRUE(findings.empty()) << findings.size() << " findings, first: "
                                << (findings.empty() ? "" : findings[0].detail);
}

TEST(VerifyPathGraphTest, UnknownSwitchFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  g.primary[1] = 991199;  // no such switch in the snapshot
  EXPECT_TRUE(HasFinding(VerifyPathGraphSemantics(t, {g}), "pathgraph-unknown-switch"));
}

TEST(VerifyPathGraphTest, BackupLoopFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  g.backup = {Uid(t, 0), Uid(t, 3), Uid(t, 0), Uid(t, 3), Uid(t, 2)};
  EXPECT_TRUE(HasFinding(VerifyPathGraphSemantics(t, {g}), "backup-loop"));
}

TEST(VerifyPathGraphTest, BrokenEdgeFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  g.primary = {Uid(t, 0), Uid(t, 2)};  // no direct S0<->S2 link exists
  EXPECT_TRUE(HasFinding(VerifyPathGraphSemantics(t, {g}), "path-broken-edge"));
}

TEST(VerifyPathGraphTest, MissingDetourVertexFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  // Strip S3 from the graph entirely: no backup, no links touching it. S3 is
  // 1+1 hops from the (only) window's endpoints, well under budget s+eps = 4,
  // so Algorithm 1 requires it as a member.
  g.backup.clear();
  g.links = {WireLink{Uid(t, 0), 1, Uid(t, 1), 1}, WireLink{Uid(t, 1), 2, Uid(t, 2), 1}};
  EXPECT_TRUE(HasFinding(VerifyPathGraphSemantics(t, {g}), "detour-incomplete"));
}

TEST(VerifyPathGraphTest, NonEpsGoodDetourFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  // Keep S3 a member (the S2<->S3 link stays) but drop the S3<->S0 link that
  // completes the detour: the fabric can route around the S0..S2 window via
  // S0-S3-S2, the cached subgraph no longer can.
  g.backup.clear();
  g.links = {WireLink{Uid(t, 0), 1, Uid(t, 1), 1}, WireLink{Uid(t, 1), 2, Uid(t, 2), 1},
             WireLink{Uid(t, 2), 2, Uid(t, 3), 1}};
  auto findings = VerifyPathGraphSemantics(t, {g});
  EXPECT_TRUE(HasFinding(findings, "detour-not-eps-good"));
  EXPECT_FALSE(HasFinding(findings, "detour-incomplete"));
}

TEST(VerifyPathGraphTest, StrandedVertexFlagged) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  // S3 stays a member via the backup path, but the graph advertises no links
  // touching it: a packet failed over onto the backup would strand there.
  g.links = {WireLink{Uid(t, 0), 1, Uid(t, 1), 1}, WireLink{Uid(t, 1), 2, Uid(t, 2), 1}};
  EXPECT_TRUE(HasFinding(VerifyPathGraphSemantics(t, {g}), "vertex-cannot-reach-dst"));
}

TEST(VerifyPathGraphTest, BackupOverlapScored) {
  Topology t = SquareTopo();
  WirePathGraph g = SquarePathGraph(t);
  g.backup = g.primary;  // total overlap
  // Default tolerance (1.0) accepts even total overlap...
  EXPECT_FALSE(HasFinding(VerifyPathGraphSemantics(t, {g}), "backup-overlap"));
  // ...a tightened one rejects it, and accepts the disjoint original.
  PathGraphVerifyOptions strict;
  strict.max_backup_overlap = 0.5;
  EXPECT_TRUE(HasFinding(VerifyPathGraphSemantics(t, {g}, strict), "backup-overlap"));
  EXPECT_FALSE(HasFinding(VerifyPathGraphSemantics(t, {SquarePathGraph(t)}, strict),
                          "backup-overlap"));
}

TEST(VerifyPathGraphTest, ControllerGeneratedGraphsVerifyClean) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);
  fabric.Run();
  std::vector<uint64_t> dst_macs;
  for (uint32_t h = 1; h < fabric.host_count(); ++h) {
    dst_macs.push_back(fabric.agent(h).mac());
  }
  auto graphs = fabric.controller().PrecomputePathGraphs(fabric.agent(0).mac(), dst_macs);
  ASSERT_TRUE(graphs.ok());
  ASSERT_FALSE(graphs.value().empty());
  auto findings = VerifyPathGraphSemantics(fabric.topo(), graphs.value());
  EXPECT_TRUE(findings.empty())
      << findings.size() << " findings, first: " << findings[0].detail;
  // And still clean after a failure + patch cycle: once the fabric broadcast
  // reaches the controller it recomputes against the patched topology, so
  // fresh graphs must re-verify against the new truth.
  fabric.topo().SetLinkUp(fabric.topo().LinkAtPort(tb.value().leaves[0], 1), false);
  fabric.Run();
  auto after = fabric.controller().PrecomputePathGraphs(fabric.agent(0).mac(), dst_macs);
  ASSERT_TRUE(after.ok());
  auto post = VerifyPathGraphSemantics(fabric.topo(), after.value());
  EXPECT_TRUE(post.empty()) << post.size() << " findings, first: " << post[0].detail;
}

TEST(DumbnetCheckCliTest, VerifyModeAndJsonOutput) {
  Topology topo = SquareTopo();
  WirePathGraph bad = SquarePathGraph(topo);
  bad.backup = {Uid(topo, 0), Uid(topo, 3), Uid(topo, 0), Uid(topo, 3), Uid(topo, 2)};
  const std::string dir = ::testing::TempDir();
  const std::string topo_path = dir + "/verify.topo";
  const std::string pg_path = dir + "/verify.pg";
  const std::string json_path = dir + "/verify.json";
  ASSERT_TRUE(SaveTopology(topo, topo_path).ok());
  ASSERT_TRUE(SaveWirePathGraphs({bad}, pg_path).ok());

  // Without --verify-pathgraph the structural checks alone miss the loop.
  std::ostringstream quiet;
  EXPECT_EQ(RunDumbnetCheck(topo_path, {pg_path}, {}, quiet), 0);

  FabricCheckOptions opts;
  opts.verify_semantics = true;
  opts.json_path = json_path;
  std::ostringstream out;
  EXPECT_EQ(RunDumbnetCheck(topo_path, {pg_path}, opts, out), 1);
  EXPECT_NE(out.str().find("backup-loop"), std::string::npos) << out.str();

  std::ifstream json_in(json_path);
  ASSERT_TRUE(json_in.good());
  std::ostringstream json;
  json << json_in.rdbuf();
  EXPECT_NE(json.str().find("\"check\":\"backup-loop\""), std::string::npos)
      << json.str();
  EXPECT_NE(json.str().find("\"count\":"), std::string::npos);
}

}  // namespace
}  // namespace dumbnet
