// Tests of the workload generators and the fluid job runner — including the key
// *property* behind Figure 13: flowlet TE beats a single static path on an
// oversubscribed leaf-spine.
#include <gtest/gtest.h>

#include "src/topo/generators.h"
#include "src/workload/hibench.h"
#include "src/workload/job_runner.h"

namespace dumbnet {
namespace {

TEST(TrafficPatternsTest, PermutationIsDerangement) {
  Rng rng(1);
  std::vector<uint32_t> hosts{0, 1, 2, 3, 4, 5, 6, 7};
  auto flows = PermutationTraffic(hosts, 1000, rng);
  ASSERT_EQ(flows.size(), hosts.size());
  std::set<uint32_t> dsts;
  for (const FlowSpec& f : flows) {
    EXPECT_NE(f.src_host, f.dst_host);
    dsts.insert(f.dst_host);
  }
  EXPECT_EQ(dsts.size(), hosts.size());
}

TEST(TrafficPatternsTest, AllToAllCount) {
  auto flows = AllToAllTraffic({0, 1, 2, 3}, 500);
  EXPECT_EQ(flows.size(), 12u);
  for (const FlowSpec& f : flows) {
    EXPECT_EQ(f.bytes, 500);
  }
}

TEST(TrafficPatternsTest, IncastTargetsSink) {
  auto flows = IncastTraffic({0, 1, 2, 3}, 2, 100);
  EXPECT_EQ(flows.size(), 3u);
  for (const FlowSpec& f : flows) {
    EXPECT_EQ(f.dst_host, 2u);
  }
}

class HiBenchShapeTest : public ::testing::TestWithParam<HiBenchWorkload> {};

TEST_P(HiBenchShapeTest, JobsAreWellFormed) {
  Rng rng(3);
  std::vector<uint32_t> hosts;
  for (uint32_t i = 0; i < 10; ++i) {
    hosts.push_back(i);
  }
  HiBenchJob job = MakeHiBenchJob(GetParam(), hosts, rng);
  EXPECT_FALSE(job.stages.empty());
  double total_bytes = 0;
  for (const JobStage& stage : job.stages) {
    for (const FlowSpec& f : stage.flows) {
      EXPECT_NE(f.src_host, f.dst_host);
      EXPECT_GT(f.bytes, 0);
      total_bytes += f.bytes;
    }
  }
  EXPECT_GT(total_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(Workloads, HiBenchShapeTest,
                         ::testing::ValuesIn(AllHiBenchWorkloads()),
                         [](const auto& inst) { return HiBenchWorkloadName(inst.param); });

TEST(HiBenchShapeTest, TerasortShufflesMoreThanWordcount) {
  Rng rng(3);
  std::vector<uint32_t> hosts{0, 1, 2, 3, 4, 5};
  auto bytes_of = [&](HiBenchWorkload kind) {
    Rng local(3);
    HiBenchJob job = MakeHiBenchJob(kind, hosts, local);
    double total = 0;
    for (const JobStage& s : job.stages) {
      for (const FlowSpec& f : s.flows) {
        total += f.bytes;
      }
    }
    return total;
  };
  EXPECT_GT(bytes_of(HiBenchWorkload::kTerasort), 3 * bytes_of(HiBenchWorkload::kWordcount));
}

// --- FluidJobRunner -------------------------------------------------------------

struct RunnerFixture {
  RunnerFixture() {
    LeafSpineConfig config;
    config.num_spine = 2;
    config.num_leaf = 3;
    config.hosts_per_leaf = 4;
    config.uplink_gbps = 0.5;  // paper Figure 13: spine ports capped at 500 Mbps
    config.host_gbps = 10.0;
    auto ls = MakeLeafSpine(config);
    topo = std::move(ls.value().topo);
    for (auto& per_leaf : ls.value().hosts) {
      for (uint32_t h : per_leaf) {
        hosts.push_back(h);
      }
    }
    fluid = std::make_unique<FluidSimulator>(&sim, &topo);
  }

  TimeNs RunPolicy(PathPolicy policy, TimeNs flowlet_interval) {
    Rng rng(11);
    HiBenchScale scale;
    scale.unit_bytes = 2e6;
    scale.compute_scale = 0.05;
    HiBenchJob job = MakeHiBenchJob(HiBenchWorkload::kTerasort, hosts, rng, scale);
    JobRunnerConfig config;
    config.flowlet_interval = flowlet_interval;
    FluidJobRunner runner(&sim, &topo, fluid.get(), std::move(policy), config);
    TimeNs duration = 0;
    runner.RunJob(job, [&](const JobResult& r) { duration = r.duration; });
    sim.Run();
    return duration;
  }

  Topology topo;
  Simulator sim;
  std::vector<uint32_t> hosts;
  std::unique_ptr<FluidSimulator> fluid;
};

TEST(JobRunnerTest, JobCompletes) {
  RunnerFixture f;
  TimeNs d = f.RunPolicy(MakeEcmpPolicy(&f.topo, 4, 1), 0);
  EXPECT_GT(d, 0);
}

TEST(JobRunnerTest, StageDurationsSumToJob) {
  RunnerFixture f;
  Rng rng(11);
  HiBenchScale scale;
  scale.unit_bytes = 1e6;
  scale.compute_scale = 0.05;
  HiBenchJob job = MakeHiBenchJob(HiBenchWorkload::kJoin, f.hosts, rng, scale);
  FluidJobRunner runner(&f.sim, &f.topo, f.fluid.get(), MakeEcmpPolicy(&f.topo, 4, 1));
  JobResult result;
  runner.RunJob(job, [&](const JobResult& r) { result = r; });
  f.sim.Run();
  ASSERT_EQ(result.stage_durations.size(), job.stages.size());
  TimeNs sum = 0;
  for (TimeNs d : result.stage_durations) {
    sum += d;
  }
  EXPECT_EQ(sum, result.duration);
}

TEST(JobRunnerTest, FlowletTeBeatsSinglePath) {
  // The Figure 13 property: on an oversubscribed leaf-spine, flowlet TE finishes
  // the shuffle faster than pinning each host pair to one path.
  TimeNs te, single;
  {
    RunnerFixture f;
    te = f.RunPolicy(MakeFlowletPolicy(&f.topo, 4, 2), Ms(100));
  }
  {
    RunnerFixture f;
    single = f.RunPolicy(MakeSinglePathPolicy(&f.topo, 2), 0);
  }
  EXPECT_GT(te, 0);
  EXPECT_GT(single, 0);
  EXPECT_LT(te, single);
}

TEST(JobRunnerTest, PoliciesAreDeterministic) {
  TimeNs a, b;
  {
    RunnerFixture f;
    a = f.RunPolicy(MakeEcmpPolicy(&f.topo, 4, 7), 0);
  }
  {
    RunnerFixture f;
    b = f.RunPolicy(MakeEcmpPolicy(&f.topo, 4, 7), 0);
  }
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dumbnet
