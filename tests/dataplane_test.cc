// Tests of the software packet pipeline (Figure 9/10 measurement substrate).
#include "src/dataplane/pipeline.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

namespace dumbnet {
namespace {

std::vector<uint8_t> MakePayload(size_t n) {
  std::vector<uint8_t> payload(n);
  std::iota(payload.begin(), payload.end(), 0);
  return payload;
}

TEST(ChecksumTest, KnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 2ddf0, folded dddf2 -> ~ = 220d.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(SoftwarePipeline::Checksum(data, sizeof(data)), 0x220d);
}

TEST(ChecksumTest, OddLengthHandled) {
  const uint8_t data[] = {0x01, 0x02, 0x03};
  // 0102 + 0300 = 0402 -> ~ = fbfd.
  EXPECT_EQ(SoftwarePipeline::Checksum(data, sizeof(data)), 0xfbfd);
}

TEST(FramePoolTest, AcquireReleaseRecycles) {
  FramePool pool(2);
  EXPECT_EQ(pool.available(), 2u);
  uint8_t* a = pool.Acquire();
  uint8_t* b = pool.Acquire();
  EXPECT_EQ(pool.available(), 0u);
  pool.Release(a);
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.Acquire(), a);  // LIFO
  pool.Release(a);
  pool.Release(b);
}

class PipelineModeTest : public ::testing::TestWithParam<PipelineMode> {};

TEST_P(PipelineModeTest, TxRxRoundTrip) {
  FramePool pool(4);
  SoftwarePipeline pipeline(GetParam(), &pool);
  auto payload = MakePayload(1400);
  TagList tags;  // at the receiver all transit tags are consumed
  size_t len = 0;
  uint8_t* frame = pipeline.ProcessTx(payload.data(), payload.size(), tags, &len);
  ASSERT_NE(frame, nullptr);
  EXPECT_GT(len, payload.size());

  auto off = pipeline.ProcessRx(frame, len);
  ASSERT_TRUE(off.ok()) << off.error().ToString();
  EXPECT_EQ(std::memcmp(frame + off.value(), payload.data(), payload.size()), 0);
  pool.Release(frame);
  EXPECT_EQ(pipeline.stats().tx_frames, 1u);
  EXPECT_EQ(pipeline.stats().rx_frames, 1u);
}

INSTANTIATE_TEST_SUITE_P(Modes, PipelineModeTest,
                         ::testing::Values(PipelineMode::kNoopDpdk, PipelineMode::kMplsOnly,
                                           PipelineMode::kDumbNet),
                         [](const auto& inst) {
                           switch (inst.param) {
                             case PipelineMode::kNoopDpdk:
                               return "NoopDpdk";
                             case PipelineMode::kMplsOnly:
                               return "MplsOnly";
                             case PipelineMode::kDumbNet:
                               return "DumbNet";
                           }
                           return "?";
                         });

TEST(PipelineTest, DumbNetRxRejectsUnconsumedTags) {
  FramePool pool(4);
  SoftwarePipeline pipeline(PipelineMode::kDumbNet, &pool);
  auto payload = MakePayload(100);
  TagList tags{3, 5};  // transit tags still present: ø is not first
  size_t len = 0;
  uint8_t* frame = pipeline.ProcessTx(payload.data(), payload.size(), tags, &len);
  auto off = pipeline.ProcessRx(frame, len);
  EXPECT_FALSE(off.ok());
  EXPECT_EQ(pipeline.stats().rx_rejected, 1u);
  pool.Release(frame);
}

TEST(PipelineTest, CorruptionDetected) {
  FramePool pool(4);
  SoftwarePipeline pipeline(PipelineMode::kNoopDpdk, &pool);
  auto payload = MakePayload(256);
  size_t len = 0;
  uint8_t* frame = pipeline.ProcessTx(payload.data(), payload.size(), {}, &len);
  frame[50] ^= 0xFF;  // bit flip
  auto off = pipeline.ProcessRx(frame, len);
  EXPECT_FALSE(off.ok());
  EXPECT_EQ(off.error().code(), ErrorCode::kMalformed);
  pool.Release(frame);
}

TEST(PipelineTest, WrongEtherTypeRejected) {
  FramePool pool(4);
  SoftwarePipeline noop(PipelineMode::kNoopDpdk, &pool);
  SoftwarePipeline mpls(PipelineMode::kMplsOnly, &pool);
  auto payload = MakePayload(64);
  size_t len = 0;
  uint8_t* frame = noop.ProcessTx(payload.data(), payload.size(), {}, &len);
  EXPECT_FALSE(mpls.ProcessRx(frame, len).ok());
  pool.Release(frame);
}

TEST(PipelineTest, FrameSizesByMode) {
  FramePool pool(8);
  auto payload = MakePayload(1000);
  size_t noop_len = 0, mpls_len = 0, dn_len = 0;
  SoftwarePipeline noop(PipelineMode::kNoopDpdk, &pool);
  SoftwarePipeline mpls(PipelineMode::kMplsOnly, &pool);
  SoftwarePipeline dn(PipelineMode::kDumbNet, &pool);
  uint8_t* f1 = noop.ProcessTx(payload.data(), payload.size(), {}, &noop_len);
  uint8_t* f2 = mpls.ProcessTx(payload.data(), payload.size(), {}, &mpls_len);
  TagList tags{1, 2, 3};
  uint8_t* f3 = dn.ProcessTx(payload.data(), payload.size(), tags, &dn_len);
  EXPECT_EQ(mpls_len, noop_len + 4);      // one MPLS label
  EXPECT_EQ(dn_len, noop_len + 3 + 1);    // three tags + ø
  pool.Release(f1);
  pool.Release(f2);
  pool.Release(f3);
}

}  // namespace
}  // namespace dumbnet
