// Tests for the dumbnet-lint engine (src/analysis/lint): every rule must fire
// on a known-bad fixture with its stable id, stay quiet on the matching
// known-good fixture, and honor allow-annotations (which require a reason).
// Fixtures live in raw strings; the linter blanks string literals before
// scanning, so this file itself lints clean.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/lint.h"

namespace dumbnet {
namespace {

bool Fires(const std::vector<LintFinding>& findings, const std::string& rule) {
  for (const LintFinding& f : findings) {
    if (f.rule == rule) {
      return true;
    }
  }
  return false;
}

size_t Count(const std::vector<LintFinding>& findings, const std::string& rule) {
  size_t n = 0;
  for (const LintFinding& f : findings) {
    n += f.rule == rule ? 1u : 0u;
  }
  return n;
}

TEST(LintRuleTest, RawRandomFires) {
  const std::string bad = R"cc(
#include <random>
int Draw() {
  std::mt19937 gen(42);
  return rand();
}
)cc";
  auto findings = LintSource("src/host/fixture.cc", bad);
  EXPECT_EQ(Count(findings, "raw-random"), 2u);
  // The blessed rng implementation is exempt by path.
  EXPECT_FALSE(Fires(LintSource("src/util/rng.cc", bad), "raw-random"));
  // Rng-based code is clean.
  const std::string good = R"cc(
#include "src/util/rng.h"
uint64_t Draw(Rng* rng) { return rng->Next(); }
)cc";
  EXPECT_TRUE(LintSource("src/host/fixture.cc", good).empty());
}

TEST(LintRuleTest, WallClockFires) {
  const std::string bad = R"cc(
#include <chrono>
#include <ctime>
double Now() {
  auto t = std::chrono::steady_clock::now();
  (void)t;
  return static_cast<double>(time(nullptr));
}
)cc";
  auto findings = LintSource("src/sim/fixture.cc", bad);
  EXPECT_EQ(Count(findings, "wall-clock"), 2u);
  EXPECT_FALSE(Fires(LintSource("src/util/logging.cc", bad), "wall-clock"));
  // `time` as a plain identifier (not a call) is not flagged.
  const std::string good = R"cc(
struct Sample { unsigned long time; };
unsigned long Get(const Sample& s) { return s.time; }
)cc";
  EXPECT_FALSE(Fires(LintSource("src/sim/fixture.cc", good), "wall-clock"));
}

TEST(LintRuleTest, UnorderedIterFiresInOrderSensitiveLayers) {
  const std::string bad = R"cc(
#include <unordered_map>
struct Agent {
  std::unordered_map<int, int> peers_;
  int Sum() {
    int total = 0;
    for (const auto& [k, v] : peers_) {
      total += v;
    }
    return total;
  }
};
)cc";
  EXPECT_TRUE(Fires(LintSource("src/host/fixture.cc", bad), "unordered-iter"));
  // The same code outside an order-sensitive layer is fine.
  EXPECT_FALSE(Fires(LintSource("src/analysis/fixture.cc", bad), "unordered-iter"));
  // Iterator-style loops are caught too.
  const std::string bad_iter = R"cc(
#include <unordered_set>
int Count(const std::unordered_set<int>& live) {
  int n = 0;
  for (auto it = live.begin(); it != live.end(); ++it) {
    ++n;
  }
  return n;
}
)cc";
  EXPECT_TRUE(Fires(LintSource("src/ctrl/fixture.cc", bad_iter), "unordered-iter"));
  // Ordered containers never fire.
  const std::string good = R"cc(
#include <map>
int Sum(const std::map<int, int>& m) {
  int total = 0;
  for (const auto& [k, v] : m) {
    total += v;
  }
  return total;
}
)cc";
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.cc", good), "unordered-iter"));
}

TEST(LintRuleTest, UnorderedIterSeesCompanionHeaderMembers) {
  const std::string header = R"cc(
#ifndef FIXTURE_H_
#define FIXTURE_H_
#include <unordered_map>
struct Table {
  std::unordered_map<int, int> entries_;
  void Walk();
};
#endif  // FIXTURE_H_
)cc";
  const std::string source = R"cc(
#include "fixture.h"
void Table::Walk() {
  for (const auto& [k, v] : entries_) {
    (void)k;
  }
}
)cc";
  // Without the header the declaration is invisible; with it, the loop fires.
  EXPECT_FALSE(Fires(LintSource("src/switch/fixture.cc", source), "unordered-iter"));
  EXPECT_TRUE(
      Fires(LintSource("src/switch/fixture.cc", source, header), "unordered-iter"));
}

TEST(LintRuleTest, AuditMessageFires) {
  const std::string bad = R"cc(
void Check(int n) {
  DUMBNET_ASSERT(n > 0);
  DUMBNET_AUDIT(n < 10, "");
}
)cc";
  auto findings = LintSource("src/host/fixture.cc", bad);
  EXPECT_EQ(Count(findings, "audit-message"), 2u);
  // Messages present (and conditions containing <=) are clean.
  const std::string good = R"cc(
void Check(int n) {
  DUMBNET_ASSERT(n > 0, "n must be positive before dispatch");
  DUMBNET_AUDIT(n <= 10, "n exceeds the configured fan-out bound");
}
)cc";
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.cc", good), "audit-message"));
}

TEST(LintRuleTest, LogKvKeyFires) {
  const std::string bad = R"cc(
void Emit(int n) {
  DN_LOG_KV(kInfo, "Host.PathMiss").Kv("DstMac", n);
}
)cc";
  auto findings = LintSource("src/host/fixture.cc", bad);
  EXPECT_EQ(Count(findings, "log-kv-key"), 2u);
  const std::string good = R"cc(
void Emit(int n) {
  DN_LOG_KV(kInfo, "host.path_miss").Kv("dst.mac", n);
}
)cc";
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.cc", good), "log-kv-key"));
}

TEST(LintRuleTest, IncludeGuardFires) {
  const std::string missing = R"cc(
#include <vector>
struct Naked {};
)cc";
  EXPECT_TRUE(Fires(LintSource("src/host/fixture.h", missing), "include-guard"));
  const std::string mismatched = R"cc(
#ifndef FIXTURE_A_H_
#define FIXTURE_B_H_
struct Naked {};
#endif
)cc";
  EXPECT_TRUE(Fires(LintSource("src/host/fixture.h", mismatched), "include-guard"));
  const std::string bad_style = R"cc(
#ifndef fixture_guard
#define fixture_guard
struct Naked {};
#endif
)cc";
  EXPECT_TRUE(Fires(LintSource("src/host/fixture.h", bad_style), "include-guard"));
  const std::string good = R"cc(
#ifndef DUMBNET_SRC_HOST_FIXTURE_H_
#define DUMBNET_SRC_HOST_FIXTURE_H_
struct Guarded {};
#endif  // DUMBNET_SRC_HOST_FIXTURE_H_
)cc";
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.h", good), "include-guard"));
  // Source files are not subject to the guard rule.
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.cc", missing), "include-guard"));
}

TEST(LintRuleTest, UsingNamespaceHeaderFires) {
  const std::string bad = R"cc(
#ifndef DUMBNET_SRC_HOST_FIXTURE_H_
#define DUMBNET_SRC_HOST_FIXTURE_H_
using namespace std;
#endif  // DUMBNET_SRC_HOST_FIXTURE_H_
)cc";
  EXPECT_TRUE(
      Fires(LintSource("src/host/fixture.h", bad), "using-namespace-header"));
  // Allowed in sources (benches and tools use it), and using-declarations are
  // fine anywhere.
  EXPECT_FALSE(
      Fires(LintSource("src/host/fixture.cc", bad), "using-namespace-header"));
  const std::string good = R"cc(
#ifndef DUMBNET_SRC_HOST_FIXTURE_H_
#define DUMBNET_SRC_HOST_FIXTURE_H_
using std::swap;
namespace dn = dumbnet;
#endif  // DUMBNET_SRC_HOST_FIXTURE_H_
)cc";
  EXPECT_FALSE(
      Fires(LintSource("src/host/fixture.h", good), "using-namespace-header"));
}

TEST(LintRuleTest, PointerKeyContainersFireInOrderSensitiveLayers) {
  const std::string bad = R"cc(
#include <map>
#include <set>
#include <unordered_map>
struct Agent;
std::map<Agent*, int> by_agent;
std::set<const Agent*> live;
std::unordered_map<Agent*, int> fast;
)cc";
  auto findings = LintSource("src/host/fixture.cc", bad);
  EXPECT_EQ(Count(findings, "pointer-key"), 3u);
  // Outside the order-sensitive layers, pointer keys are someone else's
  // problem (analysis tooling sorts its own output).
  EXPECT_FALSE(Fires(LintSource("src/analysis/fixture.cc", bad), "pointer-key"));
  // Pointer VALUES are fine — only the key position is order-bearing.
  const std::string good = R"cc(
#include <map>
#include <vector>
struct Agent;
std::map<int, Agent*> by_index;
std::map<std::pair<int, int>, Agent*> by_cell;
std::vector<Agent*> agents;
)cc";
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.cc", good), "pointer-key"));
}

TEST(LintRuleTest, PointerToIntegerCastFires) {
  const std::string bad = R"cc(
#include <cstdint>
struct Agent;
uint64_t Key(Agent* a) { return reinterpret_cast<uint64_t>(a); }
size_t Key2(Agent* a) { return reinterpret_cast<std::uintptr_t>(a); }
)cc";
  auto findings = LintSource("src/switch/fixture.cc", bad);
  EXPECT_EQ(Count(findings, "pointer-key"), 2u);
  // Pointer-to-pointer reinterpretation does not mint an address-derived key.
  const std::string good = R"cc(
#include <cstdint>
struct Agent;
char* Bytes(Agent* a) { return reinterpret_cast<char*>(a); }
const uint8_t* View(Agent* a) { return reinterpret_cast<const uint8_t*>(a); }
)cc";
  EXPECT_FALSE(Fires(LintSource("src/switch/fixture.cc", good), "pointer-key"));
  // allow() with a reason silences it like any other rule.
  const std::string allowed = R"cc(
#include <cstdint>
struct Agent;
// dn-lint: allow(pointer-key, log-only tag never ordered or compared)
uint64_t Tag(Agent* a) { return reinterpret_cast<uint64_t>(a); }
)cc";
  EXPECT_FALSE(Fires(LintSource("src/switch/fixture.cc", allowed), "pointer-key"));
}

TEST(LintRuleTest, FpInPoolFires) {
  const std::string bad = R"cc(
#include "src/util/thread_pool.h"
void Batch(ThreadPool& pool, size_t n) {
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      DN_FP_WRITE(kPathTable, i);
    }
  });
}
)cc";
  EXPECT_TRUE(Fires(LintSource("src/host/fixture.cc", bad), "fp-in-pool"));
  // Footprint declared by the simulation-thread caller, outside the pool body,
  // is the correct pattern and stays quiet.
  const std::string good = R"cc(
#include "src/util/thread_pool.h"
void Batch(ThreadPool& pool, size_t n) {
  DN_FP_WRITE(kPathTable, n);
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Compute(i);
    }
  });
}
)cc";
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.cc", good), "fp-in-pool"));
  // allow() with a reason silences it like any other rule.
  const std::string allowed = R"cc(
#include "src/util/thread_pool.h"
void Batch(ThreadPool& pool, size_t n) {
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    // dn-lint: allow(fp-in-pool, worker re-posts the declaration to its shard)
    DN_FP_READ(kPathTable, begin);
  });
}
)cc";
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.cc", allowed), "fp-in-pool"));
}

TEST(LintRuleTest, HotAllocFires) {
  // Runtime twin: ContractsTest.AllocationInsideHotScopeIsCounted — the same
  // push_back-in-hot-scope shape tripping the interposer.
  const std::string bad = R"cc(
void Fast(std::vector<int>& v) {
  DN_HOT_SCOPE("fixture.fast");
  v.push_back(1);
}
)cc";
  EXPECT_TRUE(Fires(LintSource("src/host/fixture.cc", bad), "hot-alloc"));
  const std::string bad_new = R"cc(
int* Fast() {
  DN_HOT_SCOPE("fixture.fast");
  return new int(7);
}
)cc";
  EXPECT_TRUE(Fires(LintSource("src/host/fixture.cc", bad_new), "hot-alloc"));
  // Outside any hot scope the same tokens are fine.
  const std::string good = R"cc(
void Slow(std::vector<int>& v) {
  v.push_back(1);
}
)cc";
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.cc", good), "hot-alloc"));
  // A DN_HOT_EXEMPT block fences a declared-cold subpath.
  const std::string exempt = R"cc(
void Fast(std::vector<int>& v, bool miss) {
  DN_HOT_SCOPE("fixture.fast");
  if (miss) {
    DN_HOT_EXEMPT("cache miss refills the table");
    v.push_back(1);
  }
  Use(v);
}
)cc";
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.cc", exempt), "hot-alloc"));
  // The region ends with the scope's enclosing block.
  const std::string after = R"cc(
void Mixed(std::vector<int>& v) {
  {
    DN_HOT_SCOPE("fixture.fast");
    Use(v);
  }
  v.push_back(1);
}
)cc";
  EXPECT_FALSE(Fires(LintSource("src/host/fixture.cc", after), "hot-alloc"));
  // make_unique in call position is allocation too.
  const std::string maker = R"cc(
void Fast() {
  DN_HOT_SCOPE("fixture.fast");
  auto p = std::make_unique<int>(3);
}
)cc";
  EXPECT_TRUE(Fires(LintSource("src/host/fixture.cc", maker), "hot-alloc"));
}

TEST(LintRuleTest, ReactorBlockFires) {
  // Runtime twin: ContractsTest.BlockingPointInReactorContextIsCounted.
  const std::string bad = R"cc(
void OnReadable(int fd, char* buf, size_t len) {
  DN_REACTOR_CONTEXT;
  ssize_t n = ::read(fd, buf, len);
  Use(n);
}
)cc";
  EXPECT_TRUE(Fires(LintSource("src/wire/fixture.cc", bad), "reactor-block"));
  const std::string bad_lock = R"cc(
void OnReadable(std::mutex& mu) {
  DN_REACTOR_CONTEXT;
  std::lock_guard<std::mutex> guard(mu);
}
)cc";
  EXPECT_TRUE(Fires(LintSource("src/wire/fixture.cc", bad_lock), "reactor-block"));
  // The guarded shims are the blessed path and carry no flagged token.
  const std::string good = R"cc(
void OnReadable(int fd, char* buf, size_t len) {
  DN_REACTOR_CONTEXT;
  long n = contracts::GuardedRecv(fd, buf, len, 0);
  Use(n);
}
)cc";
  EXPECT_FALSE(Fires(LintSource("src/wire/fixture.cc", good), "reactor-block"));
  // Blocking tokens outside a reactor region never fire.
  const std::string outside = R"cc(
void Sync(int fd, char* buf, size_t len) {
  ssize_t n = ::read(fd, buf, len);
  Use(n);
}
)cc";
  EXPECT_FALSE(Fires(LintSource("src/wire/fixture.cc", outside), "reactor-block"));
}

TEST(LintRuleTest, MutexRankFires) {
  // Runtime twin: ContractsTest.RankInversionFlaggedAtAcquireTime (the
  // annotated pair); here the *missing* annotation is the static failure.
  const std::string bad = R"cc(
class Reactor {
 private:
  std::mutex post_mu_;
};
)cc";
  EXPECT_TRUE(Fires(LintSource("src/wire/fixture.h", bad), "mutex-rank"));
  const std::string good = R"cc(
class Reactor {
 private:
  std::mutex post_mu_;
  DN_MUTEX_RANK(post_mu_, contracts::kRankWireReactorPost);
};
)cc";
  EXPECT_FALSE(Fires(LintSource("src/wire/fixture.h", good), "mutex-rank"));
  // Only the deployment-runtime layers demand ranks; a sim-side mutex is free.
  EXPECT_FALSE(Fires(LintSource("src/sim/fixture.h", bad), "mutex-rank"));
}

TEST(LintSuppressionTest, AllowSilencesSameAndNextLine) {
  const std::string same_line = R"cc(
int Draw() {
  return rand();  // dn-lint: allow(raw-random, fixture exercises suppression)
}
)cc";
  EXPECT_TRUE(LintSource("src/host/fixture.cc", same_line).empty());
  const std::string line_above = R"cc(
int Draw() {
  // dn-lint: allow(raw-random, fixture exercises suppression)
  return rand();
}
)cc";
  EXPECT_TRUE(LintSource("src/host/fixture.cc", line_above).empty());
  // The annotation is rule-scoped: other rules on the line still fire.
  const std::string wrong_rule = R"cc(
int Draw() {
  // dn-lint: allow(wall-clock, wrong rule on purpose)
  return rand();
}
)cc";
  EXPECT_TRUE(Fires(LintSource("src/host/fixture.cc", wrong_rule), "raw-random"));
  // And it does not leak two lines down.
  const std::string too_far = R"cc(
int Draw() {
  // dn-lint: allow(raw-random, too far away)
  int x = 1;
  return rand() + x;
}
)cc";
  EXPECT_TRUE(Fires(LintSource("src/host/fixture.cc", too_far), "raw-random"));
}

TEST(LintSuppressionTest, BadSuppressionsAreThemselvesFindings) {
  // A reason is mandatory.
  const std::string no_reason = R"cc(
int Draw() {
  return rand();  // dn-lint: allow(raw-random)
}
)cc";
  auto findings = LintSource("src/host/fixture.cc", no_reason);
  EXPECT_TRUE(Fires(findings, "bad-suppression"));
  // ...and a reasonless annotation does not suppress.
  EXPECT_TRUE(Fires(findings, "raw-random"));
  // Unknown rule names are flagged.
  const std::string unknown = R"cc(
int f();  // dn-lint: allow(no-such-rule, whatever)
)cc";
  EXPECT_TRUE(
      Fires(LintSource("src/host/fixture.cc", unknown), "bad-suppression"));
}

TEST(LintScannerTest, CommentsAndStringsDoNotFire) {
  const std::string decoys = R"cc(
// rand() and std::mt19937 in a comment are not calls.
/* neither is steady_clock in a block comment */
const char* kDoc = "call rand() for entropy";
const char* kRaw = R"(std::random_device inside a raw string)";
int value = 1'000'000;  // digit separators are not char literals
)cc";
  EXPECT_TRUE(LintSource("src/host/fixture.cc", decoys).empty());
}

TEST(LintScannerTest, EveryRuleIdIsKnown) {
  // KnownLintRules drives allow() validation; a rule that fires but is not
  // registered could never be suppressed.
  const std::vector<std::string>& rules = KnownLintRules();
  for (const char* id : {"raw-random", "wall-clock", "unordered-iter",
                         "audit-message", "log-kv-key", "include-guard",
                         "using-namespace-header", "bad-suppression",
                         "fp-in-pool", "hot-alloc", "reactor-block",
                         "mutex-rank"}) {
    bool found = false;
    for (const std::string& r : rules) {
      found = found || r == id;
    }
    EXPECT_TRUE(found) << id;
  }
}

TEST(LintOutputTest, FormatAndJsonCarryRuleFileLine) {
  const std::string bad = "int Draw() { return rand(); }\n";
  auto findings = LintSource("src/host/fixture.cc", bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1u);
  const std::string text = FormatLintFindings(findings);
  EXPECT_NE(text.find("src/host/fixture.cc:1: [raw-random]"), std::string::npos)
      << text;
  const std::string json = LintFindingsJson(findings);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\":\"raw-random\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\":1"), std::string::npos) << json;
  EXPECT_EQ(LintFindingsJson({}), "{\"count\":0,\"findings\":[]}");
}

}  // namespace
}  // namespace dumbnet
