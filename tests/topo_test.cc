#include "src/topo/topology.h"

#include <gtest/gtest.h>

#include "src/topo/generators.h"

namespace dumbnet {
namespace {

TEST(TopologyTest, ConnectAndQuery) {
  Topology t;
  uint32_t s0 = t.AddSwitch(4);
  uint32_t s1 = t.AddSwitch(4);
  auto li = t.ConnectSwitches(s0, 1, s1, 2);
  ASSERT_TRUE(li.ok());
  EXPECT_EQ(t.LinkAtPort(s0, 1), li.value());
  EXPECT_EQ(t.LinkAtPort(s1, 2), li.value());
  auto peer = t.PeerOf(s0, 1);
  ASSERT_TRUE(peer.ok());
  EXPECT_EQ(peer.value().node.index, s1);
  EXPECT_EQ(peer.value().port, 2);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TopologyTest, RejectsBadWiring) {
  Topology t;
  uint32_t s0 = t.AddSwitch(4);
  uint32_t s1 = t.AddSwitch(4);
  EXPECT_EQ(t.ConnectSwitches(s0, 0, s1, 1).error().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(t.ConnectSwitches(s0, 5, s1, 1).error().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(t.ConnectSwitches(s0, 1, 99, 1).error().code(), ErrorCode::kOutOfRange);
  ASSERT_TRUE(t.ConnectSwitches(s0, 1, s1, 1).ok());
  EXPECT_EQ(t.ConnectSwitches(s0, 1, s1, 2).error().code(), ErrorCode::kAlreadyExists);
  // Self-link forbidden.
  EXPECT_EQ(t.Connect(Endpoint{NodeId::Switch(s0), 2}, Endpoint{NodeId::Switch(s0), 3})
                .error()
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(TopologyTest, HostAttachment) {
  Topology t;
  uint32_t sw = t.AddSwitch(4);
  uint32_t h = t.AddHost();
  EXPECT_FALSE(t.HostUplink(h).ok());
  ASSERT_TRUE(t.AttachHost(h, sw, 2).ok());
  auto up = t.HostUplink(h);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up.value().node.index, sw);
  EXPECT_EQ(up.value().port, 2);
  // A host has one NIC.
  EXPECT_FALSE(t.AttachHost(h, sw, 3).ok());
}

TEST(TopologyTest, UidAndMacLookups) {
  Topology t;
  uint32_t s0 = t.AddSwitch(4);
  uint32_t h0 = t.AddHost();
  ASSERT_TRUE(t.AttachHost(h0, s0, 1).ok());
  EXPECT_EQ(t.SwitchByUid(t.switch_at(s0).uid).value(), s0);
  EXPECT_EQ(t.HostByMac(t.host_at(h0).mac).value(), h0);
  EXPECT_FALSE(t.SwitchByUid(12345).ok());
  EXPECT_FALSE(t.HostByMac(12345).ok());
}

TEST(TopologyTest, LinkObserversFire) {
  Topology t;
  uint32_t s0 = t.AddSwitch(4);
  uint32_t s1 = t.AddSwitch(4);
  LinkIndex li = t.ConnectSwitches(s0, 1, s1, 1).value();
  int events = 0;
  bool last_up = true;
  t.AddLinkObserver([&](LinkIndex i, bool up) {
    EXPECT_EQ(i, li);
    ++events;
    last_up = up;
  });
  t.SetLinkUp(li, false);
  t.SetLinkUp(li, false);  // idempotent: no event
  t.SetLinkUp(li, true);
  EXPECT_EQ(events, 2);
  EXPECT_TRUE(last_up);
}

TEST(TopologyTest, DetachLinkFreesPorts) {
  Topology t;
  uint32_t s0 = t.AddSwitch(4);
  uint32_t s1 = t.AddSwitch(4);
  uint32_t s2 = t.AddSwitch(4);
  LinkIndex li = t.ConnectSwitches(s0, 1, s1, 1).value();
  t.DetachLink(li);
  EXPECT_TRUE(t.link_at(li).detached);
  EXPECT_FALSE(t.link_at(li).up);
  EXPECT_EQ(t.LinkAtPort(s0, 1), kInvalidLink);
  // Ports are free for rewiring.
  ASSERT_TRUE(t.ConnectSwitches(s0, 1, s2, 1).ok());
}

TEST(TopologyTest, ConnectivityCheck) {
  Topology t;
  uint32_t s0 = t.AddSwitch(4);
  uint32_t s1 = t.AddSwitch(4);
  uint32_t s2 = t.AddSwitch(4);
  LinkIndex a = t.ConnectSwitches(s0, 1, s1, 1).value();
  t.ConnectSwitches(s1, 2, s2, 1).value();
  EXPECT_TRUE(t.IsConnected());
  t.SetLinkUp(a, false);
  EXPECT_FALSE(t.IsConnected());
}

// --- Generators ---------------------------------------------------------------

TEST(GeneratorsTest, PaperTestbedShape) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  EXPECT_EQ(tb.value().topo.switch_count(), 7u);
  EXPECT_EQ(tb.value().topo.host_count(), 27u);
  EXPECT_EQ(tb.value().topo.InterSwitchLinkCount(), 10u);
  EXPECT_TRUE(tb.value().topo.Validate().ok());
  EXPECT_TRUE(tb.value().topo.IsConnected());
}

class FatTreeParamTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FatTreeParamTest, StructuralInvariants) {
  uint32_t k = GetParam();
  FatTreeConfig config;
  config.k = k;
  auto ft = MakeFatTree(config);
  ASSERT_TRUE(ft.ok());
  const Topology& t = ft.value().topo;
  EXPECT_EQ(t.switch_count(), 5 * k * k / 4);
  EXPECT_EQ(t.host_count(), k * k * k / 4);
  // Inter-switch links: k^3/4 edge-agg + k^3/4 agg-core.
  EXPECT_EQ(t.InterSwitchLinkCount(), k * k * k / 2);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_TRUE(t.IsConnected());
  EXPECT_EQ(ft.value().core.size(), k * k / 4);
  EXPECT_EQ(ft.value().aggregation.size(), k * k / 2);
  EXPECT_EQ(ft.value().edge.size(), k * k / 2);
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeParamTest, ::testing::Values(4u, 6u, 8u, 12u));

TEST(GeneratorsTest, FatTreeRejectsOddK) {
  FatTreeConfig config;
  config.k = 5;
  EXPECT_FALSE(MakeFatTree(config).ok());
}

class CubeParamTest : public ::testing::TestWithParam<std::array<uint32_t, 3>> {};

TEST_P(CubeParamTest, GridInvariants) {
  auto dims = GetParam();
  CubeConfig config;
  config.dims = dims;
  config.switch_ports = 16;
  auto cube = MakeCube(config);
  ASSERT_TRUE(cube.ok());
  const auto [nx, ny, nz] = dims;
  const Topology& t = cube.value().topo;
  EXPECT_EQ(t.switch_count(), nx * ny * nz);
  // Grid edges: (nx-1)*ny*nz + nx*(ny-1)*nz + nx*ny*(nz-1).
  size_t expect = (nx - 1) * ny * nz + nx * (ny - 1) * nz + nx * ny * (nz - 1);
  EXPECT_EQ(t.InterSwitchLinkCount(), expect);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_TRUE(t.IsConnected());
}

INSTANTIATE_TEST_SUITE_P(Dims, CubeParamTest,
                         ::testing::Values(std::array<uint32_t, 3>{2, 2, 2},
                                           std::array<uint32_t, 3>{3, 3, 3},
                                           std::array<uint32_t, 3>{4, 2, 3},
                                           std::array<uint32_t, 3>{1, 5, 5}));

TEST(GeneratorsTest, TorusWrapAddsLinks) {
  CubeConfig config;
  config.dims = {4, 4, 4};
  config.switch_ports = 16;
  auto grid = MakeCube(config);
  config.wrap = true;
  auto torus = MakeCube(config);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(torus.ok());
  EXPECT_GT(torus.value().topo.InterSwitchLinkCount(),
            grid.value().topo.InterSwitchLinkCount());
  // Full 3-D torus: 3 * N links.
  EXPECT_EQ(torus.value().topo.InterSwitchLinkCount(), 3u * 4 * 4 * 4);
}

TEST(GeneratorsTest, JellyfishDegreeBounds) {
  JellyfishConfig config;
  config.num_switches = 32;
  config.switch_ports = 12;
  config.network_degree = 6;
  config.hosts_per_switch = 2;
  config.seed = 99;
  auto jf = MakeJellyfish(config);
  ASSERT_TRUE(jf.ok());
  const Topology& t = jf.value().topo;
  EXPECT_EQ(t.switch_count(), 32u);
  EXPECT_EQ(t.host_count(), 64u);
  EXPECT_TRUE(t.Validate().ok());
  // No switch exceeds its network degree.
  for (uint32_t s = 0; s < t.switch_count(); ++s) {
    size_t net_links = 0;
    for (PortNum p = 1; p <= config.network_degree; ++p) {
      if (t.LinkAtPort(s, p) != kInvalidLink) {
        ++net_links;
      }
    }
    EXPECT_LE(net_links, config.network_degree);
  }
  // Random regular graphs of this size are connected with overwhelming
  // probability; the generator should achieve it for this seed.
  EXPECT_TRUE(t.IsConnected());
}

TEST(GeneratorsTest, LeafSpinePortBudgetEnforced) {
  LeafSpineConfig config;
  config.num_spine = 60;
  config.hosts_per_leaf = 10;
  config.switch_ports = 64;
  EXPECT_FALSE(MakeLeafSpine(config).ok());
}

}  // namespace
}  // namespace dumbnet
