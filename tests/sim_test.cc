#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

namespace dumbnet {
namespace {

TEST(SimulatorTest, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Ms(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Ms(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Ms(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Ms(30));
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Ms(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(Ms(1), [&] {
    ++fired;
    sim.ScheduleAfter(Ms(1), [&] {
      ++fired;
      sim.ScheduleAfter(Ms(1), [&] { ++fired; });
    });
  });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), Ms(3));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.ScheduleAfter(Ms(1), [&] { ++fired; });
  sim.ScheduleAfter(Ms(2), [&] { ++fired; });
  sim.Cancel(h);
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelAfterRunIsNoop) {
  Simulator sim;
  EventHandle h = sim.ScheduleAfter(Ms(1), [] {});
  sim.Run();
  sim.Cancel(h);  // must not blow up
  sim.ScheduleAfter(Ms(1), [] {});
  EXPECT_EQ(sim.Run(), 1u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Ms(5), [&] { ++fired; });
  sim.ScheduleAt(Ms(15), [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(Ms(10)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Ms(10));  // clock lands exactly on the deadline
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunStepsBounded) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Ms(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.RunSteps(4), 4u);
  EXPECT_EQ(fired, 4);
}

TEST(SimulatorTest, TimeHelpers) {
  EXPECT_EQ(Us(1), 1000);
  EXPECT_EQ(Ms(1), 1000 * 1000);
  EXPECT_EQ(Sec(1), 1000 * 1000 * 1000);
  EXPECT_DOUBLE_EQ(ToSec(Sec(2)), 2.0);
  EXPECT_DOUBLE_EQ(ToMs(Ms(3)), 3.0);
  // 1500 bytes at 10 Gbps = 1.2 us.
  EXPECT_EQ(TransmitTimeNs(1500, 10.0), 1200);
}

TEST(SimulatorTest, ManyEventsStress) {
  Simulator sim;
  uint64_t fired = 0;
  for (int i = 0; i < 100000; ++i) {
    sim.ScheduleAt(Us(i % 997), [&] { ++fired; });
  }
  EXPECT_EQ(sim.Run(), 100000u);
  EXPECT_EQ(fired, 100000u);
}

// Regression: the old core kept every cancelled id in a lazily-probed list, so a
// cancel-per-ack workload grew memory without bound. The slot pool must stay
// bounded by the number of *outstanding* events, not the number ever scheduled.
TEST(SimulatorTest, CancelHeavyMemoryBounded) {
  Simulator sim;
  const uint64_t kTicks = 50000;
  const uint64_t kWindow = 64;
  std::vector<EventHandle> timers(kWindow);
  uint64_t fired = 0;
  std::function<void(uint64_t)> tick = [&](uint64_t i) {
    if (i >= kTicks) {
      return;
    }
    sim.Cancel(timers[i % kWindow]);  // the ack beat the timeout
    timers[i % kWindow] = sim.ScheduleAfter(Ms(5), [&fired] { ++fired; });
    sim.ScheduleAfter(Us(1), [&tick, i] { tick(i + 1); });
  };
  sim.ScheduleAt(0, [&tick] { tick(0); });
  sim.Run();
  // Outstanding at any instant: kWindow timeouts + one tick + <= Ms(5)/Us(1)
  // not-yet-cancelled timers in flight. Far below kTicks if cancellation reclaims.
  EXPECT_LT(sim.mem_stats().pool_slots, 2 * (kWindow + Ms(5) / Us(1)));
  EXPECT_EQ(sim.mem_stats().queued_events, 0u);
  EXPECT_EQ(sim.mem_stats().free_slots, sim.mem_stats().pool_slots);
}

TEST(SimulatorTest, TraceHookReportsEveryExecutedEvent) {
  Simulator sim;
  std::vector<std::pair<TimeNs, uint64_t>> trace;
  sim.SetTraceHook([&](TimeNs at, uint64_t seq) { trace.emplace_back(at, seq); });
  EventHandle doomed{};
  sim.ScheduleAt(Ms(2), [] {});
  sim.ScheduleAt(Ms(1), [&] {
    sim.ScheduleAfter(Us(10), [] {});
    doomed = sim.ScheduleAt(Ms(5), [] { FAIL() << "cancelled event ran"; });
    sim.ScheduleAt(Ms(3), [&] { sim.Cancel(doomed); });
  });
  EXPECT_EQ(sim.Run(), 4u);
  ASSERT_EQ(trace.size(), 4u);  // cancelled events never reach the hook
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].first, trace[i].first);
  }
  // Detach: no further callbacks.
  sim.SetTraceHook(nullptr);
  sim.ScheduleAt(Ms(10), [] {});
  sim.Run();
  EXPECT_EQ(trace.size(), 4u);
}

}  // namespace
}  // namespace dumbnet
