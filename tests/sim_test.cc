#include "src/sim/simulator.h"

#include <gtest/gtest.h>

namespace dumbnet {
namespace {

TEST(SimulatorTest, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Ms(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Ms(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Ms(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Ms(30));
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Ms(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(Ms(1), [&] {
    ++fired;
    sim.ScheduleAfter(Ms(1), [&] {
      ++fired;
      sim.ScheduleAfter(Ms(1), [&] { ++fired; });
    });
  });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), Ms(3));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.ScheduleAfter(Ms(1), [&] { ++fired; });
  sim.ScheduleAfter(Ms(2), [&] { ++fired; });
  sim.Cancel(h);
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelAfterRunIsNoop) {
  Simulator sim;
  EventHandle h = sim.ScheduleAfter(Ms(1), [] {});
  sim.Run();
  sim.Cancel(h);  // must not blow up
  sim.ScheduleAfter(Ms(1), [] {});
  EXPECT_EQ(sim.Run(), 1u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Ms(5), [&] { ++fired; });
  sim.ScheduleAt(Ms(15), [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(Ms(10)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Ms(10));  // clock lands exactly on the deadline
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunStepsBounded) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Ms(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.RunSteps(4), 4u);
  EXPECT_EQ(fired, 4);
}

TEST(SimulatorTest, TimeHelpers) {
  EXPECT_EQ(Us(1), 1000);
  EXPECT_EQ(Ms(1), 1000 * 1000);
  EXPECT_EQ(Sec(1), 1000 * 1000 * 1000);
  EXPECT_DOUBLE_EQ(ToSec(Sec(2)), 2.0);
  EXPECT_DOUBLE_EQ(ToMs(Ms(3)), 3.0);
  // 1500 bytes at 10 Gbps = 1.2 us.
  EXPECT_EQ(TransmitTimeNs(1500, 10.0), 1200);
}

TEST(SimulatorTest, ManyEventsStress) {
  Simulator sim;
  uint64_t fired = 0;
  for (int i = 0; i < 100000; ++i) {
    sim.ScheduleAt(Us(i % 997), [&] { ++fired; });
  }
  EXPECT_EQ(sim.Run(), 100000u);
  EXPECT_EQ(fired, 100000u);
}

}  // namespace
}  // namespace dumbnet
