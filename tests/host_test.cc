// Unit tests for the host-side building blocks: PathTable, TopoCache, PathVerifier,
// and HostAgent behaviours that do not need a controller.
#include <gtest/gtest.h>

#include "src/host/host_agent.h"
#include "src/host/path_table.h"
#include "src/host/path_verifier.h"
#include "src/host/topo_cache.h"
#include "src/topo/generators.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

CachedRoute Route(std::vector<uint64_t> uids, TagList tags) {
  CachedRoute r;
  r.uid_path = std::move(uids);
  r.tags = std::move(tags);
  return r;
}

PathTableEntry TwoPathEntry() {
  PathTableEntry entry;
  entry.dst = HostLocation{99, 30, 5};
  entry.paths.push_back(Route({10, 20, 30}, {1, 2, 5}));
  entry.paths.push_back(Route({10, 21, 30}, {2, 2, 5}));
  entry.backup = Route({10, 22, 23, 30}, {3, 2, 2, 5});
  entry.has_backup = true;
  return entry;
}

TEST(PathTableTest, FlowBindingIsSticky) {
  PathTable table(1);
  table.Install(99, TwoPathEntry());
  auto first = table.RouteFor(99, 7);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 10; ++i) {
    auto again = table.RouteFor(99, 7);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value()->uid_path, first.value()->uid_path);
  }
  EXPECT_EQ(table.stats().hits, 11u);
}

TEST(PathTableTest, DifferentFlowsSpread) {
  PathTable table(1);
  table.Install(99, TwoPathEntry());
  std::set<TagList> used;
  for (uint64_t flow = 0; flow < 64; ++flow) {
    used.insert(table.RouteFor(99, flow).value()->tags);
  }
  EXPECT_EQ(used.size(), 2u);  // both equal-cost paths get traffic
}

TEST(PathTableTest, MissCounts) {
  PathTable table(1);
  EXPECT_FALSE(table.RouteFor(12345, 1).ok());
  EXPECT_EQ(table.stats().misses, 1u);
}

TEST(PathTableTest, InvalidateEdgeDropsRoutesAndPromotesBackup) {
  PathTable table(1);
  table.Install(99, TwoPathEntry());
  // Kill edge 10-20: one primary survives.
  auto starved = table.InvalidateEdge(10, 20);
  EXPECT_TRUE(starved.empty());
  const PathTableEntry* entry = table.Find(99);
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->paths.size(), 1u);
  EXPECT_EQ(entry->paths[0].uid_path, (std::vector<uint64_t>{10, 21, 30}));

  // Kill edge 10-21 too: only backup remains; it is promoted.
  starved = table.InvalidateEdge(21, 10);
  EXPECT_TRUE(starved.empty());
  entry = table.Find(99);
  ASSERT_EQ(entry->paths.size(), 1u);
  EXPECT_EQ(entry->paths[0].uid_path.size(), 4u);
  EXPECT_FALSE(entry->has_backup);

  // Kill the backup's edge as well: now starved.
  starved = table.InvalidateEdge(22, 23);
  ASSERT_EQ(starved.size(), 1u);
  EXPECT_EQ(starved[0], 99u);
}

TEST(PathTableTest, ChooserOverridesDefault) {
  PathTable table(1);
  table.Install(99, TwoPathEntry());
  table.SetRouteChooser([](const PathTableEntry&, uint64_t) -> size_t { return 1; });
  for (uint64_t flow = 0; flow < 8; ++flow) {
    EXPECT_EQ(table.RouteFor(99, flow).value()->uid_path[1], 21u);
  }
}

TEST(PathTableTest, UsesEdgeIsUndirected) {
  CachedRoute r = Route({1, 2, 3}, {});
  EXPECT_TRUE(r.UsesEdge(1, 2));
  EXPECT_TRUE(r.UsesEdge(2, 1));
  EXPECT_TRUE(r.UsesEdge(3, 2));
  EXPECT_FALSE(r.UsesEdge(1, 3));
}

// --- TopoCache -----------------------------------------------------------------

WirePathGraph DiamondGraph() {
  // Switch uids 100,101,102,103; two 2-hop routes 100-101-103 / 100-102-103.
  WirePathGraph g;
  g.src_uid = 100;
  g.dst_uid = 103;
  g.primary = {100, 101, 103};
  g.backup = {100, 102, 103};
  g.links = {WireLink{100, 1, 101, 1}, WireLink{101, 2, 103, 1},
             WireLink{100, 2, 102, 1}, WireLink{102, 2, 103, 2}};
  return g;
}

TEST(TopoCacheTest, IntegrateAndComputeRoutes) {
  TopoCache cache;
  ASSERT_TRUE(cache.Integrate(DiamondGraph(), HostLocation{55, 103, 7}).ok());
  auto routes = cache.ComputeRoutes(100, 55, 4);
  ASSERT_TRUE(routes.ok());
  EXPECT_EQ(routes.value().size(), 2u);
  for (const CachedRoute& r : routes.value()) {
    EXPECT_EQ(r.uid_path.size(), 3u);
    EXPECT_EQ(r.tags.size(), 3u);
    EXPECT_EQ(r.tags.back(), 7);  // final hop to the host
  }
}

TEST(TopoCacheTest, MarkLinkDownReroutes) {
  TopoCache cache;
  ASSERT_TRUE(cache.Integrate(DiamondGraph(), HostLocation{55, 103, 7}).ok());
  auto edge = cache.MarkLinkAt(101, 2, false);
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(std::min(edge.value().first, edge.value().second), 101u);
  auto routes = cache.ComputeRoutes(100, 55, 4);
  ASSERT_TRUE(routes.ok());
  ASSERT_EQ(routes.value().size(), 1u);
  EXPECT_EQ(routes.value()[0].uid_path, (std::vector<uint64_t>{100, 102, 103}));
}

TEST(TopoCacheTest, UnknownLinkEventIgnored) {
  TopoCache cache;
  ASSERT_TRUE(cache.Integrate(DiamondGraph(), HostLocation{55, 103, 7}).ok());
  EXPECT_FALSE(cache.MarkLinkAt(999, 1, false).ok());
  EXPECT_FALSE(cache.MarkLinkAt(100, 9, false).ok());
}

TEST(TopoCacheTest, BuildEntryIncludesBackup) {
  TopoCache cache;
  ASSERT_TRUE(cache.Integrate(DiamondGraph(), HostLocation{55, 103, 7}).ok());
  auto entry = cache.BuildEntry(100, 55, 1);  // k=1: backup differs from primary
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value().paths.size(), 1u);
  EXPECT_TRUE(entry.value().has_backup);
  EXPECT_NE(entry.value().backup.uid_path, entry.value().paths[0].uid_path);
}

TEST(TopoCacheTest, PatchRestoresLink) {
  TopoCache cache;
  ASSERT_TRUE(cache.Integrate(DiamondGraph(), HostLocation{55, 103, 7}).ok());
  cache.ApplyPatch({WireLink{101, 2, 103, 1}}, {});
  auto routes = cache.ComputeRoutes(100, 55, 4);
  ASSERT_EQ(routes.value().size(), 1u);
  cache.ApplyPatch({}, {WireLink{101, 2, 103, 1}});
  routes = cache.ComputeRoutes(100, 55, 4);
  EXPECT_EQ(routes.value().size(), 2u);
}

TEST(TopoCacheTest, ApproxBytesGrows) {
  TopoCache cache;
  size_t before = cache.ApproxBytes();
  ASSERT_TRUE(cache.Integrate(DiamondGraph(), HostLocation{55, 103, 7}).ok());
  EXPECT_GT(cache.ApproxBytes(), before);
}

// --- PathVerifier ----------------------------------------------------------------

class VerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cache_.Integrate(DiamondGraph(), HostLocation{55, 103, 7}).ok());
  }
  TopoCache cache_;
};

TEST_F(VerifierTest, AcceptsValidPath) {
  PathVerifier v(&cache_.db(), VerifyPolicy{});
  EXPECT_TRUE(v.VerifyUidPath({100, 101, 103}).ok());
}

TEST_F(VerifierTest, RejectsNonAdjacent) {
  PathVerifier v(&cache_.db(), VerifyPolicy{});
  EXPECT_EQ(v.VerifyUidPath({100, 103}).error().code(), ErrorCode::kUnavailable);
}

TEST_F(VerifierTest, RejectsLoops) {
  PathVerifier v(&cache_.db(), VerifyPolicy{});
  EXPECT_EQ(v.VerifyUidPath({100, 101, 100}).error().code(), ErrorCode::kInvalidArgument);
}

TEST_F(VerifierTest, RejectsOverlongPath) {
  VerifyPolicy policy;
  policy.max_path_length = 2;
  PathVerifier v(&cache_.db(), policy);
  EXPECT_EQ(v.VerifyUidPath({100, 101, 103}).error().code(), ErrorCode::kOutOfRange);
}

TEST_F(VerifierTest, RejectsDownLink) {
  cache_.db().SetLinkState(101, 2, false);
  PathVerifier v(&cache_.db(), VerifyPolicy{});
  EXPECT_EQ(v.VerifyUidPath({100, 101, 103}).error().code(), ErrorCode::kUnavailable);
}

TEST_F(VerifierTest, PolicyFiltersSwitches) {
  VerifyPolicy policy;
  policy.switch_allowed = [](uint64_t uid) { return uid != 101; };
  PathVerifier v(&cache_.db(), policy);
  EXPECT_EQ(v.VerifyUidPath({100, 101, 103}).error().code(), ErrorCode::kPermissionDenied);
  EXPECT_TRUE(v.VerifyUidPath({100, 102, 103}).ok());
}

TEST_F(VerifierTest, VerifyTagsWalksTopology) {
  PathVerifier v(&cache_.db(), VerifyPolicy{});
  // 1 (100->101), 2 (101->103), 7 (exit to host).
  EXPECT_TRUE(v.VerifyTags(100, {1, 2, 7}).ok());
  // A tag crossing a down link fails.
  cache_.db().SetLinkState(100, 1, false);
  EXPECT_FALSE(v.VerifyTags(100, {1, 2, 7}).ok());
}

TEST_F(VerifierTest, VerifyTagsRejectsSpecials) {
  PathVerifier v(&cache_.db(), VerifyPolicy{});
  EXPECT_FALSE(v.VerifyTags(100, {kIdQueryTag, 1, 7}).ok());
  EXPECT_FALSE(v.VerifyTags(100, {1, kPathEndTag, 7}).ok());
}

// --- HostAgent basics (no controller) ------------------------------------------------

TEST(HostAgentTest, TransitProbeGetsReply) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  HostAgent& prober = fabric.agent(25);

  std::vector<Packet> events;
  prober.SetProbeEventHandler([&](const Packet& pkt) { events.push_back(pkt); });

  // Host-probe the port of agent 0 (both agents share leaf 0): path is
  // [H0's port] with return tags [prober's port].
  PortNum h0_port = fabric.topo().HostUplink(0).value().port;
  PortNum my_port = fabric.topo().HostUplink(25).value().port;
  prober.SendTags({h0_port, my_port}, kBroadcastMac,
                  ProbePayload{1, prober.mac(), {h0_port, my_port, kPathEndTag}});
  fabric.Run();

  ASSERT_EQ(events.size(), 1u);
  const auto* reply = events[0].As<ProbeReplyPayload>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->responder_mac, fabric.agent(0).mac());
  EXPECT_EQ(reply->reply_path, (TagList{my_port, kPathEndTag}));
  EXPECT_EQ(fabric.agent(0).stats().probes_replied, 1u);
}

TEST(HostAgentTest, UnbootstrappedSendQueues) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  EXPECT_TRUE(fabric.agent(0).Send(fabric.agent(1).mac(), 1, DataPayload{}).ok());
  fabric.Run();
  EXPECT_EQ(fabric.agent(0).stats().data_blocked, 1u);
  EXPECT_EQ(fabric.agent(1).stats().data_received, 0u);
}

TEST(HostAgentTest, SendOnPathVerifies) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  auto spines = tb.value().spines;
  auto leaves = tb.value().leaves;
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);

  HostAgent& src = fabric.agent(0);    // on leaf0
  HostAgent& dst = fabric.agent(12);   // on leaf2
  int received = 0;
  dst.SetDataHandler([&](const Packet&, const DataPayload&) { ++received; });

  // Pull the topology into src's cache first (one normal send).
  ASSERT_TRUE(src.Send(dst.mac(), 1, DataPayload{}).ok());
  fabric.Run();
  ASSERT_EQ(received, 1);

  uint64_t leaf0 = fabric.topo().switch_at(leaves[0]).uid;
  uint64_t spine1 = fabric.topo().switch_at(spines[1]).uid;
  uint64_t leaf2 = fabric.topo().switch_at(leaves[2]).uid;
  // A valid explicit route via spine 1.
  EXPECT_TRUE(src.SendOnPath(dst.mac(), {leaf0, spine1, leaf2}, DataPayload{}).ok());
  // A bogus explicit route (no leaf0-leaf2 link) is rejected by the verifier.
  EXPECT_FALSE(src.SendOnPath(dst.mac(), {leaf0, leaf2}, DataPayload{}).ok());
  fabric.Run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(src.stats().verify_failures, 1u);
}

}  // namespace
}  // namespace dumbnet
