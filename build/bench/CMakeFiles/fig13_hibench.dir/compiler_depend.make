# Empty compiler generated dependencies file for fig13_hibench.
# This may be replaced when dependencies are built.
