file(REMOVE_RECURSE
  "CMakeFiles/fig13_hibench.dir/fig13_hibench.cc.o"
  "CMakeFiles/fig13_hibench.dir/fig13_hibench.cc.o.d"
  "fig13_hibench"
  "fig13_hibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
