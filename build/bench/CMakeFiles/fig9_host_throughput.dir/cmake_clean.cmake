file(REMOVE_RECURSE
  "CMakeFiles/fig9_host_throughput.dir/fig9_host_throughput.cc.o"
  "CMakeFiles/fig9_host_throughput.dir/fig9_host_throughput.cc.o.d"
  "fig9_host_throughput"
  "fig9_host_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_host_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
