# Empty dependencies file for fig7_fpga_resources.
# This may be replaced when dependencies are built.
