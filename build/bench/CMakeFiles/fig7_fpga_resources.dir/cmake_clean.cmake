file(REMOVE_RECURSE
  "CMakeFiles/fig7_fpga_resources.dir/fig7_fpga_resources.cc.o"
  "CMakeFiles/fig7_fpga_resources.dir/fig7_fpga_resources.cc.o.d"
  "fig7_fpga_resources"
  "fig7_fpga_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fpga_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
