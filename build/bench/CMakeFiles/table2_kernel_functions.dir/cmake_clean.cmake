file(REMOVE_RECURSE
  "CMakeFiles/table2_kernel_functions.dir/table2_kernel_functions.cc.o"
  "CMakeFiles/table2_kernel_functions.dir/table2_kernel_functions.cc.o.d"
  "table2_kernel_functions"
  "table2_kernel_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kernel_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
