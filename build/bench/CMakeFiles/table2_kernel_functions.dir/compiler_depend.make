# Empty compiler generated dependencies file for table2_kernel_functions.
# This may be replaced when dependencies are built.
