# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11b_failover_vs_stp.
