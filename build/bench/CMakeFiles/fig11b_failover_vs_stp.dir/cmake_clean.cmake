file(REMOVE_RECURSE
  "CMakeFiles/fig11b_failover_vs_stp.dir/fig11b_failover_vs_stp.cc.o"
  "CMakeFiles/fig11b_failover_vs_stp.dir/fig11b_failover_vs_stp.cc.o.d"
  "fig11b_failover_vs_stp"
  "fig11b_failover_vs_stp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_failover_vs_stp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
