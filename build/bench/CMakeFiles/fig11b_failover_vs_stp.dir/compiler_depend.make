# Empty compiler generated dependencies file for fig11b_failover_vs_stp.
# This may be replaced when dependencies are built.
