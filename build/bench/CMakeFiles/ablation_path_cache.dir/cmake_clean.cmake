file(REMOVE_RECURSE
  "CMakeFiles/ablation_path_cache.dir/ablation_path_cache.cc.o"
  "CMakeFiles/ablation_path_cache.dir/ablation_path_cache.cc.o.d"
  "ablation_path_cache"
  "ablation_path_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
