file(REMOVE_RECURSE
  "CMakeFiles/fig8b_discovery_ports.dir/fig8b_discovery_ports.cc.o"
  "CMakeFiles/fig8b_discovery_ports.dir/fig8b_discovery_ports.cc.o.d"
  "fig8b_discovery_ports"
  "fig8b_discovery_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_discovery_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
