# Empty dependencies file for fig8b_discovery_ports.
# This may be replaced when dependencies are built.
