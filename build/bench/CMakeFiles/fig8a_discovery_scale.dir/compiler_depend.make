# Empty compiler generated dependencies file for fig8a_discovery_scale.
# This may be replaced when dependencies are built.
