file(REMOVE_RECURSE
  "CMakeFiles/fig8a_discovery_scale.dir/fig8a_discovery_scale.cc.o"
  "CMakeFiles/fig8a_discovery_scale.dir/fig8a_discovery_scale.cc.o.d"
  "fig8a_discovery_scale"
  "fig8a_discovery_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_discovery_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
