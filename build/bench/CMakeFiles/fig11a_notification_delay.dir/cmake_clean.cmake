file(REMOVE_RECURSE
  "CMakeFiles/fig11a_notification_delay.dir/fig11a_notification_delay.cc.o"
  "CMakeFiles/fig11a_notification_delay.dir/fig11a_notification_delay.cc.o.d"
  "fig11a_notification_delay"
  "fig11a_notification_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_notification_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
