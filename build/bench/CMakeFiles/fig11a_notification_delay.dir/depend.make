# Empty dependencies file for fig11a_notification_delay.
# This may be replaced when dependencies are built.
