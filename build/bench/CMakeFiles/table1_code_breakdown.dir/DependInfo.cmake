
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_code_breakdown.cc" "bench/CMakeFiles/table1_code_breakdown.dir/table1_code_breakdown.cc.o" "gcc" "bench/CMakeFiles/table1_code_breakdown.dir/table1_code_breakdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dumbnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/dumbnet_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/dumbnet_host.dir/DependInfo.cmake"
  "/root/repo/build/src/switch/CMakeFiles/dumbnet_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dumbnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dumbnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dumbnet_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/dumbnet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/fluid/CMakeFiles/dumbnet_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/dumbnet_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/dumbnet_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/dumbnet_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dumbnet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/dumbnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dumbnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dumbnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
