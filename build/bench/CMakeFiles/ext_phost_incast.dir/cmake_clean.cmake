file(REMOVE_RECURSE
  "CMakeFiles/ext_phost_incast.dir/ext_phost_incast.cc.o"
  "CMakeFiles/ext_phost_incast.dir/ext_phost_incast.cc.o.d"
  "ext_phost_incast"
  "ext_phost_incast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_phost_incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
