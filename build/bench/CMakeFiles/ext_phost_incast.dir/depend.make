# Empty dependencies file for ext_phost_incast.
# This may be replaced when dependencies are built.
