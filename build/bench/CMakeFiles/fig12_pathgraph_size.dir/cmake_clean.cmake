file(REMOVE_RECURSE
  "CMakeFiles/fig12_pathgraph_size.dir/fig12_pathgraph_size.cc.o"
  "CMakeFiles/fig12_pathgraph_size.dir/fig12_pathgraph_size.cc.o.d"
  "fig12_pathgraph_size"
  "fig12_pathgraph_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pathgraph_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
