file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_topo_tool.dir/dumbnet_topo.cc.o"
  "CMakeFiles/dumbnet_topo_tool.dir/dumbnet_topo.cc.o.d"
  "dumbnet-topo"
  "dumbnet-topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_topo_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
