# Empty compiler generated dependencies file for dumbnet_topo_tool.
# This may be replaced when dependencies are built.
