# Empty compiler generated dependencies file for phost_test.
# This may be replaced when dependencies are built.
