file(REMOVE_RECURSE
  "CMakeFiles/phost_test.dir/phost_test.cc.o"
  "CMakeFiles/phost_test.dir/phost_test.cc.o.d"
  "phost_test"
  "phost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
