# Empty dependencies file for ext_test.
# This may be replaced when dependencies are built.
