file(REMOVE_RECURSE
  "CMakeFiles/switch_test.dir/switch_test.cc.o"
  "CMakeFiles/switch_test.dir/switch_test.cc.o.d"
  "switch_test"
  "switch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
