# Empty dependencies file for future_work_test.
# This may be replaced when dependencies are built.
