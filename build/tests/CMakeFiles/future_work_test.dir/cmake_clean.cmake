file(REMOVE_RECURSE
  "CMakeFiles/future_work_test.dir/future_work_test.cc.o"
  "CMakeFiles/future_work_test.dir/future_work_test.cc.o.d"
  "future_work_test"
  "future_work_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_work_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
