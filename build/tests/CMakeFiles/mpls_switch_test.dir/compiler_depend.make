# Empty compiler generated dependencies file for mpls_switch_test.
# This may be replaced when dependencies are built.
