file(REMOVE_RECURSE
  "CMakeFiles/mpls_switch_test.dir/mpls_switch_test.cc.o"
  "CMakeFiles/mpls_switch_test.dir/mpls_switch_test.cc.o.d"
  "mpls_switch_test"
  "mpls_switch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpls_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
