# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mpls_switch_test.
