file(REMOVE_RECURSE
  "CMakeFiles/file_driven_fabric.dir/file_driven_fabric.cpp.o"
  "CMakeFiles/file_driven_fabric.dir/file_driven_fabric.cpp.o.d"
  "file_driven_fabric"
  "file_driven_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_driven_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
