# Empty compiler generated dependencies file for file_driven_fabric.
# This may be replaced when dependencies are built.
