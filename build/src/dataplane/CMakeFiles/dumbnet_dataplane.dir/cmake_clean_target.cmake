file(REMOVE_RECURSE
  "libdumbnet_dataplane.a"
)
