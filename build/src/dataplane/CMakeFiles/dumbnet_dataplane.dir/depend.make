# Empty dependencies file for dumbnet_dataplane.
# This may be replaced when dependencies are built.
