file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_dataplane.dir/pipeline.cc.o"
  "CMakeFiles/dumbnet_dataplane.dir/pipeline.cc.o.d"
  "libdumbnet_dataplane.a"
  "libdumbnet_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
