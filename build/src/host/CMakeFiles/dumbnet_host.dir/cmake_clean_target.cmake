file(REMOVE_RECURSE
  "libdumbnet_host.a"
)
