
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/host_agent.cc" "src/host/CMakeFiles/dumbnet_host.dir/host_agent.cc.o" "gcc" "src/host/CMakeFiles/dumbnet_host.dir/host_agent.cc.o.d"
  "/root/repo/src/host/join_prober.cc" "src/host/CMakeFiles/dumbnet_host.dir/join_prober.cc.o" "gcc" "src/host/CMakeFiles/dumbnet_host.dir/join_prober.cc.o.d"
  "/root/repo/src/host/path_table.cc" "src/host/CMakeFiles/dumbnet_host.dir/path_table.cc.o" "gcc" "src/host/CMakeFiles/dumbnet_host.dir/path_table.cc.o.d"
  "/root/repo/src/host/path_verifier.cc" "src/host/CMakeFiles/dumbnet_host.dir/path_verifier.cc.o" "gcc" "src/host/CMakeFiles/dumbnet_host.dir/path_verifier.cc.o.d"
  "/root/repo/src/host/topo_cache.cc" "src/host/CMakeFiles/dumbnet_host.dir/topo_cache.cc.o" "gcc" "src/host/CMakeFiles/dumbnet_host.dir/topo_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dumbnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dumbnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dumbnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/dumbnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dumbnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
