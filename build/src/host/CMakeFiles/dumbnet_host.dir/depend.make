# Empty dependencies file for dumbnet_host.
# This may be replaced when dependencies are built.
