file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_host.dir/host_agent.cc.o"
  "CMakeFiles/dumbnet_host.dir/host_agent.cc.o.d"
  "CMakeFiles/dumbnet_host.dir/join_prober.cc.o"
  "CMakeFiles/dumbnet_host.dir/join_prober.cc.o.d"
  "CMakeFiles/dumbnet_host.dir/path_table.cc.o"
  "CMakeFiles/dumbnet_host.dir/path_table.cc.o.d"
  "CMakeFiles/dumbnet_host.dir/path_verifier.cc.o"
  "CMakeFiles/dumbnet_host.dir/path_verifier.cc.o.d"
  "CMakeFiles/dumbnet_host.dir/topo_cache.cc.o"
  "CMakeFiles/dumbnet_host.dir/topo_cache.cc.o.d"
  "libdumbnet_host.a"
  "libdumbnet_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
