# Empty compiler generated dependencies file for dumbnet_fpga.
# This may be replaced when dependencies are built.
