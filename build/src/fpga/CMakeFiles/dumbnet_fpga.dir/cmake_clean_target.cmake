file(REMOVE_RECURSE
  "libdumbnet_fpga.a"
)
