file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_fpga.dir/resource_model.cc.o"
  "CMakeFiles/dumbnet_fpga.dir/resource_model.cc.o.d"
  "libdumbnet_fpga.a"
  "libdumbnet_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
