# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("topo")
subdirs("routing")
subdirs("net")
subdirs("switch")
subdirs("host")
subdirs("ctrl")
subdirs("core")
subdirs("baseline")
subdirs("transport")
subdirs("fluid")
subdirs("dataplane")
subdirs("ext")
subdirs("fpga")
subdirs("workload")
