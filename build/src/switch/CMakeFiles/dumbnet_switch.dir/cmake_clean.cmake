file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_switch.dir/dumb_switch.cc.o"
  "CMakeFiles/dumbnet_switch.dir/dumb_switch.cc.o.d"
  "CMakeFiles/dumbnet_switch.dir/mpls_switch.cc.o"
  "CMakeFiles/dumbnet_switch.dir/mpls_switch.cc.o.d"
  "libdumbnet_switch.a"
  "libdumbnet_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
