# Empty compiler generated dependencies file for dumbnet_switch.
# This may be replaced when dependencies are built.
