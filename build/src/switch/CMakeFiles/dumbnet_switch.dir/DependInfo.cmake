
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switch/dumb_switch.cc" "src/switch/CMakeFiles/dumbnet_switch.dir/dumb_switch.cc.o" "gcc" "src/switch/CMakeFiles/dumbnet_switch.dir/dumb_switch.cc.o.d"
  "/root/repo/src/switch/mpls_switch.cc" "src/switch/CMakeFiles/dumbnet_switch.dir/mpls_switch.cc.o" "gcc" "src/switch/CMakeFiles/dumbnet_switch.dir/mpls_switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dumbnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dumbnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dumbnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/dumbnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dumbnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
