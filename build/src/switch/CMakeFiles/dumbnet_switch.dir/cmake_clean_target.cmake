file(REMOVE_RECURSE
  "libdumbnet_switch.a"
)
