file(REMOVE_RECURSE
  "libdumbnet_ctrl.a"
)
