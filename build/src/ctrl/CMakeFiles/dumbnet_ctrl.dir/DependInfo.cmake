
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/controller.cc" "src/ctrl/CMakeFiles/dumbnet_ctrl.dir/controller.cc.o" "gcc" "src/ctrl/CMakeFiles/dumbnet_ctrl.dir/controller.cc.o.d"
  "/root/repo/src/ctrl/discovery.cc" "src/ctrl/CMakeFiles/dumbnet_ctrl.dir/discovery.cc.o" "gcc" "src/ctrl/CMakeFiles/dumbnet_ctrl.dir/discovery.cc.o.d"
  "/root/repo/src/ctrl/replicated_log.cc" "src/ctrl/CMakeFiles/dumbnet_ctrl.dir/replicated_log.cc.o" "gcc" "src/ctrl/CMakeFiles/dumbnet_ctrl.dir/replicated_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/dumbnet_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dumbnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dumbnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dumbnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/dumbnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dumbnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
