# Empty dependencies file for dumbnet_ctrl.
# This may be replaced when dependencies are built.
