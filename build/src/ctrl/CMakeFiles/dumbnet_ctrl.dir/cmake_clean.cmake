file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_ctrl.dir/controller.cc.o"
  "CMakeFiles/dumbnet_ctrl.dir/controller.cc.o.d"
  "CMakeFiles/dumbnet_ctrl.dir/discovery.cc.o"
  "CMakeFiles/dumbnet_ctrl.dir/discovery.cc.o.d"
  "CMakeFiles/dumbnet_ctrl.dir/replicated_log.cc.o"
  "CMakeFiles/dumbnet_ctrl.dir/replicated_log.cc.o.d"
  "libdumbnet_ctrl.a"
  "libdumbnet_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
