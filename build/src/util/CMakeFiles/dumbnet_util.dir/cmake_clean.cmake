file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_util.dir/logging.cc.o"
  "CMakeFiles/dumbnet_util.dir/logging.cc.o.d"
  "CMakeFiles/dumbnet_util.dir/result.cc.o"
  "CMakeFiles/dumbnet_util.dir/result.cc.o.d"
  "CMakeFiles/dumbnet_util.dir/rng.cc.o"
  "CMakeFiles/dumbnet_util.dir/rng.cc.o.d"
  "CMakeFiles/dumbnet_util.dir/stats.cc.o"
  "CMakeFiles/dumbnet_util.dir/stats.cc.o.d"
  "libdumbnet_util.a"
  "libdumbnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
