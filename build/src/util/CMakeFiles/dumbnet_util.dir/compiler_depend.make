# Empty compiler generated dependencies file for dumbnet_util.
# This may be replaced when dependencies are built.
