file(REMOVE_RECURSE
  "libdumbnet_util.a"
)
