file(REMOVE_RECURSE
  "libdumbnet_transport.a"
)
