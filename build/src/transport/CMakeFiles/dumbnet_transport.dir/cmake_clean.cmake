file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_transport.dir/phost.cc.o"
  "CMakeFiles/dumbnet_transport.dir/phost.cc.o.d"
  "CMakeFiles/dumbnet_transport.dir/reliable_flow.cc.o"
  "CMakeFiles/dumbnet_transport.dir/reliable_flow.cc.o.d"
  "libdumbnet_transport.a"
  "libdumbnet_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
