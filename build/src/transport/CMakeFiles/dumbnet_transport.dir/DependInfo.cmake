
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/phost.cc" "src/transport/CMakeFiles/dumbnet_transport.dir/phost.cc.o" "gcc" "src/transport/CMakeFiles/dumbnet_transport.dir/phost.cc.o.d"
  "/root/repo/src/transport/reliable_flow.cc" "src/transport/CMakeFiles/dumbnet_transport.dir/reliable_flow.cc.o" "gcc" "src/transport/CMakeFiles/dumbnet_transport.dir/reliable_flow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/dumbnet_host.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dumbnet_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dumbnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dumbnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dumbnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/dumbnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dumbnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
