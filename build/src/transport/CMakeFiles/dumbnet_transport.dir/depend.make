# Empty dependencies file for dumbnet_transport.
# This may be replaced when dependencies are built.
