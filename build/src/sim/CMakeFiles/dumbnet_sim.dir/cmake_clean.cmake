file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_sim.dir/simulator.cc.o"
  "CMakeFiles/dumbnet_sim.dir/simulator.cc.o.d"
  "libdumbnet_sim.a"
  "libdumbnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
