# Empty compiler generated dependencies file for dumbnet_sim.
# This may be replaced when dependencies are built.
