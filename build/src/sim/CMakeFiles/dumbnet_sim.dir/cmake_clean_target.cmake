file(REMOVE_RECURSE
  "libdumbnet_sim.a"
)
