file(REMOVE_RECURSE
  "libdumbnet_fluid.a"
)
