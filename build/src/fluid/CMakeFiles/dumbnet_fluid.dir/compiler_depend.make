# Empty compiler generated dependencies file for dumbnet_fluid.
# This may be replaced when dependencies are built.
