file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_fluid.dir/fluid_sim.cc.o"
  "CMakeFiles/dumbnet_fluid.dir/fluid_sim.cc.o.d"
  "libdumbnet_fluid.a"
  "libdumbnet_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
