file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_ext.dir/ecn_reroute.cc.o"
  "CMakeFiles/dumbnet_ext.dir/ecn_reroute.cc.o.d"
  "CMakeFiles/dumbnet_ext.dir/flowlet.cc.o"
  "CMakeFiles/dumbnet_ext.dir/flowlet.cc.o.d"
  "CMakeFiles/dumbnet_ext.dir/l3_router.cc.o"
  "CMakeFiles/dumbnet_ext.dir/l3_router.cc.o.d"
  "CMakeFiles/dumbnet_ext.dir/virtualization.cc.o"
  "CMakeFiles/dumbnet_ext.dir/virtualization.cc.o.d"
  "libdumbnet_ext.a"
  "libdumbnet_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
