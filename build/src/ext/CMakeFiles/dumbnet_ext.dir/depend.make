# Empty dependencies file for dumbnet_ext.
# This may be replaced when dependencies are built.
