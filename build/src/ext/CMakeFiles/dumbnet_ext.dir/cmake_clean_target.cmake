file(REMOVE_RECURSE
  "libdumbnet_ext.a"
)
