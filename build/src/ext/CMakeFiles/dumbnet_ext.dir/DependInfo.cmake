
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ext/ecn_reroute.cc" "src/ext/CMakeFiles/dumbnet_ext.dir/ecn_reroute.cc.o" "gcc" "src/ext/CMakeFiles/dumbnet_ext.dir/ecn_reroute.cc.o.d"
  "/root/repo/src/ext/flowlet.cc" "src/ext/CMakeFiles/dumbnet_ext.dir/flowlet.cc.o" "gcc" "src/ext/CMakeFiles/dumbnet_ext.dir/flowlet.cc.o.d"
  "/root/repo/src/ext/l3_router.cc" "src/ext/CMakeFiles/dumbnet_ext.dir/l3_router.cc.o" "gcc" "src/ext/CMakeFiles/dumbnet_ext.dir/l3_router.cc.o.d"
  "/root/repo/src/ext/virtualization.cc" "src/ext/CMakeFiles/dumbnet_ext.dir/virtualization.cc.o" "gcc" "src/ext/CMakeFiles/dumbnet_ext.dir/virtualization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/dumbnet_host.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/dumbnet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dumbnet_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dumbnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dumbnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dumbnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/dumbnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dumbnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
