# Empty compiler generated dependencies file for dumbnet_ext.
# This may be replaced when dependencies are built.
