
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/hibench.cc" "src/workload/CMakeFiles/dumbnet_workload.dir/hibench.cc.o" "gcc" "src/workload/CMakeFiles/dumbnet_workload.dir/hibench.cc.o.d"
  "/root/repo/src/workload/job_runner.cc" "src/workload/CMakeFiles/dumbnet_workload.dir/job_runner.cc.o" "gcc" "src/workload/CMakeFiles/dumbnet_workload.dir/job_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fluid/CMakeFiles/dumbnet_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dumbnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dumbnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dumbnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/dumbnet_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
