file(REMOVE_RECURSE
  "libdumbnet_workload.a"
)
