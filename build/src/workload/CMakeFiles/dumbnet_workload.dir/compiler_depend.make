# Empty compiler generated dependencies file for dumbnet_workload.
# This may be replaced when dependencies are built.
