file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_workload.dir/hibench.cc.o"
  "CMakeFiles/dumbnet_workload.dir/hibench.cc.o.d"
  "CMakeFiles/dumbnet_workload.dir/job_runner.cc.o"
  "CMakeFiles/dumbnet_workload.dir/job_runner.cc.o.d"
  "libdumbnet_workload.a"
  "libdumbnet_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
