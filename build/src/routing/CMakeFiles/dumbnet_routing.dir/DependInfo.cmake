
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/graph.cc" "src/routing/CMakeFiles/dumbnet_routing.dir/graph.cc.o" "gcc" "src/routing/CMakeFiles/dumbnet_routing.dir/graph.cc.o.d"
  "/root/repo/src/routing/path_graph.cc" "src/routing/CMakeFiles/dumbnet_routing.dir/path_graph.cc.o" "gcc" "src/routing/CMakeFiles/dumbnet_routing.dir/path_graph.cc.o.d"
  "/root/repo/src/routing/shortest_path.cc" "src/routing/CMakeFiles/dumbnet_routing.dir/shortest_path.cc.o" "gcc" "src/routing/CMakeFiles/dumbnet_routing.dir/shortest_path.cc.o.d"
  "/root/repo/src/routing/tags.cc" "src/routing/CMakeFiles/dumbnet_routing.dir/tags.cc.o" "gcc" "src/routing/CMakeFiles/dumbnet_routing.dir/tags.cc.o.d"
  "/root/repo/src/routing/topo_db.cc" "src/routing/CMakeFiles/dumbnet_routing.dir/topo_db.cc.o" "gcc" "src/routing/CMakeFiles/dumbnet_routing.dir/topo_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/dumbnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dumbnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
