file(REMOVE_RECURSE
  "libdumbnet_routing.a"
)
