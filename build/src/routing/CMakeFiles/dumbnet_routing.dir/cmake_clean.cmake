file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_routing.dir/graph.cc.o"
  "CMakeFiles/dumbnet_routing.dir/graph.cc.o.d"
  "CMakeFiles/dumbnet_routing.dir/path_graph.cc.o"
  "CMakeFiles/dumbnet_routing.dir/path_graph.cc.o.d"
  "CMakeFiles/dumbnet_routing.dir/shortest_path.cc.o"
  "CMakeFiles/dumbnet_routing.dir/shortest_path.cc.o.d"
  "CMakeFiles/dumbnet_routing.dir/tags.cc.o"
  "CMakeFiles/dumbnet_routing.dir/tags.cc.o.d"
  "CMakeFiles/dumbnet_routing.dir/topo_db.cc.o"
  "CMakeFiles/dumbnet_routing.dir/topo_db.cc.o.d"
  "libdumbnet_routing.a"
  "libdumbnet_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
