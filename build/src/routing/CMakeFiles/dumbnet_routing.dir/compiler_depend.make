# Empty compiler generated dependencies file for dumbnet_routing.
# This may be replaced when dependencies are built.
