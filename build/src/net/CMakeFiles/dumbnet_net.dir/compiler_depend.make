# Empty compiler generated dependencies file for dumbnet_net.
# This may be replaced when dependencies are built.
