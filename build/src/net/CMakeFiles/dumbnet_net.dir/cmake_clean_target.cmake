file(REMOVE_RECURSE
  "libdumbnet_net.a"
)
