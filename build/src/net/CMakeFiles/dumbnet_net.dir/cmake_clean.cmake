file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_net.dir/network.cc.o"
  "CMakeFiles/dumbnet_net.dir/network.cc.o.d"
  "CMakeFiles/dumbnet_net.dir/packet.cc.o"
  "CMakeFiles/dumbnet_net.dir/packet.cc.o.d"
  "libdumbnet_net.a"
  "libdumbnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
