file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_topo.dir/generators.cc.o"
  "CMakeFiles/dumbnet_topo.dir/generators.cc.o.d"
  "CMakeFiles/dumbnet_topo.dir/serialize.cc.o"
  "CMakeFiles/dumbnet_topo.dir/serialize.cc.o.d"
  "CMakeFiles/dumbnet_topo.dir/topology.cc.o"
  "CMakeFiles/dumbnet_topo.dir/topology.cc.o.d"
  "libdumbnet_topo.a"
  "libdumbnet_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
