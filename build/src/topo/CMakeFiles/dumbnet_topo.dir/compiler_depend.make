# Empty compiler generated dependencies file for dumbnet_topo.
# This may be replaced when dependencies are built.
