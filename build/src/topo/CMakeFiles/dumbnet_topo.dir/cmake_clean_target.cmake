file(REMOVE_RECURSE
  "libdumbnet_topo.a"
)
