file(REMOVE_RECURSE
  "libdumbnet_baseline.a"
)
