# Empty dependencies file for dumbnet_baseline.
# This may be replaced when dependencies are built.
