file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_baseline.dir/ethernet_switch.cc.o"
  "CMakeFiles/dumbnet_baseline.dir/ethernet_switch.cc.o.d"
  "libdumbnet_baseline.a"
  "libdumbnet_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
