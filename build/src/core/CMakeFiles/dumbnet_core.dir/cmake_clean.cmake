file(REMOVE_RECURSE
  "CMakeFiles/dumbnet_core.dir/fabric.cc.o"
  "CMakeFiles/dumbnet_core.dir/fabric.cc.o.d"
  "libdumbnet_core.a"
  "libdumbnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumbnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
