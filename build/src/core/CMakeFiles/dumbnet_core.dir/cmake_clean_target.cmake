file(REMOVE_RECURSE
  "libdumbnet_core.a"
)
