# Empty dependencies file for dumbnet_core.
# This may be replaced when dependencies are built.
