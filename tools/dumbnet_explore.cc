// dumbnet-explore — virtual-time race detector + DPOR schedule explorer.
//
// Re-executes a fabric scenario while permuting same-timestamp event batches,
// using the footprint conflicts the handlers declare (DN_FP_*) as the DPOR
// generator set. Every terminal state is digested (controller database + every
// host's topology mirror + injected scenario state); a reordering that changes
// the digest or the invariant-audit outcome is a confirmed ordering race, and
// the minimized schedule that exposes it is written out for replay.
//
// Usage:
//   dumbnet-explore [--scenario discovery|failover|gossip] [--schedules N]
//                   [--seed S] [--inject-race] [--emit-schedule FILE]
//                   [--replay-schedule FILE] [--json FILE] [--no-minimize]
//
// Exit codes: 0 no races and no unannotated hazards, 1 findings (divergence
// or unannotated hazards), 2 usage / IO error.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/explore.h"
#include "src/core/fabric.h"
#include "src/sim/footprint.h"
#include "src/topo/generators.h"
#include "src/topo/serialize.h"

namespace {

using dumbnet::explore::ExploreConfig;
using dumbnet::explore::ExploreReport;
using dumbnet::explore::HazardCollector;
using dumbnet::explore::MakePermuter;
using dumbnet::explore::ParseSchedule;
using dumbnet::explore::RunOutcome;
using dumbnet::explore::Schedule;
using dumbnet::explore::SerializeSchedule;

struct Options {
  std::string scenario = "discovery";
  uint64_t schedules = 64;
  uint64_t seed = 7;
  bool inject_race = false;
  bool minimize = true;
  std::string emit_schedule;
  std::string replay_schedule;
  std::string json_path;
};

int Usage() {
  std::cerr
      << "usage: dumbnet-explore [--scenario discovery|failover|gossip]\n"
      << "                       [--schedules N] [--seed S] [--inject-race]\n"
      << "                       [--emit-schedule FILE] [--replay-schedule FILE]\n"
      << "                       [--json FILE] [--no-minimize]\n"
      << "exit codes: 0 clean, 1 findings, 2 usage/io error\n";
  return 2;
}

uint64_t Fnv1a(const std::string& bytes, uint64_t h = 0xCBF29CE484222325ULL) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Runtime footprint opt-in for the duration of one run, exception-free RAII.
struct FootprintRun {
  FootprintRun() { dumbnet::footprint::SetEnabled(true); }
  ~FootprintRun() { dumbnet::footprint::SetEnabled(false); }
};

// One scenario execution under one schedule. Builds the whole fabric from
// scratch so runs are independent and bit-for-bit deterministic per schedule.
RunOutcome RunScenario(const Options& opts, const Schedule& schedule) {
  RunOutcome out;
  auto testbed = dumbnet::MakePaperTestbed();
  if (!testbed.ok()) {
    out.violations.push_back("testbed: " + testbed.error().ToString());
    return out;
  }
  const uint32_t spine0 = testbed.value().spines[0];
  const uint32_t spine1 = testbed.value().spines[1];
  dumbnet::SimulatedFabric fabric(std::move(testbed.value().topo));
  dumbnet::Simulator& sim = fabric.sim();
  sim.SetBatchPermuter(MakePermuter(schedule));
  HazardCollector collector(&sim);
  FootprintRun fp_on;

  dumbnet::ControllerConfig config;
  config.rng_seed = opts.seed;

  uint64_t race_word = 1;  // --inject-race shared cell, folded into the digest
  if (opts.scenario == "discovery") {
    dumbnet::DiscoveryConfig discovery;
    discovery.max_ports = 16;
    if (!fabric.BringUp(25, config, discovery)) {
      out.violations.push_back("bring-up never completed");
    }
    fabric.EnableAuditing();
    fabric.Run();
  } else {
    // failover / gossip both start from an adopted topology with warm routes.
    fabric.BringUpAdopted(25, config);
    fabric.EnableAuditing();
    for (uint32_t h = 0; h < 8; ++h) {
      (void)fabric.agent(h).Send(fabric.agent(h + 10).mac(), h, dumbnet::DataPayload{});
    }
    sim.Run();

    dumbnet::LinkIndex l0 = fabric.topo().LinkAtPort(spine0, 1);
    dumbnet::LinkIndex l1 = fabric.topo().LinkAtPort(spine1, 1);
    // Both spine uplinks die at the same virtual instant: the two detection
    // events (and everything downstream — alarms, gossip floods, patches)
    // land in shared same-timestamp batches.
    fabric.topo().SetLinkUp(l0, false);
    fabric.topo().SetLinkUp(l1, false);
    for (uint32_t h = 0; h < 8; ++h) {
      (void)fabric.agent(h).Send(fabric.agent(h + 10).mac(), 100 + h,
                                 dumbnet::DataPayload{});
    }
    sim.Run();
    if (opts.scenario == "gossip") {
      // Concurrent flap: both links revive together, then die together again,
      // exercising the LWW observation merge from both directions.
      fabric.topo().SetLinkUp(l0, true);
      fabric.topo().SetLinkUp(l1, true);
      sim.Run();
      fabric.topo().SetLinkUp(l0, false);
      fabric.topo().SetLinkUp(l1, false);
      sim.Run();
    }
    fabric.topo().SetLinkUp(l0, true);
    fabric.topo().SetLinkUp(l1, true);
    sim.Run();
  }

  if (opts.inject_race) {
    // Deliberate ordering race: two same-instant writes to one scenario cell
    // that do not commute. The detector must flag them and the explorer must
    // confirm divergence with a one-batch counterexample schedule.
    const dumbnet::TimeNs at = sim.Now() + dumbnet::Ms(1);
    sim.ScheduleAt(at, [&race_word] {
      DN_FP_SCOPE("inject.scale", 0xA);
      DN_FP_WRITE(kScenario, 1);
      race_word = race_word * 3 + 1;
    });
    sim.ScheduleAt(at, [&race_word] {
      DN_FP_SCOPE("inject.add", 0xB);
      DN_FP_WRITE(kScenario, 1);
      race_word += 7;
    });
    sim.Run();
  }

  // Terminal digest: controller database plus every host's topology mirror.
  // Data-plane transients (in-flight drops during failures) are deliberately
  // excluded — the convergence claim is about control-plane state.
  uint64_t h = Fnv1a(dumbnet::SerializeTopology(fabric.controller().db().mirror()));
  for (uint32_t host = 0; host < static_cast<uint32_t>(fabric.host_count()); ++host) {
    h = Fnv1a(dumbnet::SerializeTopology(fabric.agent(host).topo_cache().db().mirror()),
              h);
  }
  std::ostringstream extra;
  extra << race_word;
  out.state_hash = Fnv1a(extra.str(), h);
  out.events = sim.executed_events();
  out.batches = sim.batches_formed();
  if (fabric.auditor() != nullptr) {
    for (const auto& v : fabric.auditor()->violations()) {
      out.violations.push_back(v.invariant + ": " + v.detail);
    }
  }
  out.conflicts = collector.TakeConflicts();
  out.hazard_lines = collector.TakeLines();
  return out;
}

void PrintOutcome(const char* tag, const RunOutcome& out) {
  std::cout << tag << ": hash 0x" << std::hex << out.state_hash << std::dec << ", "
            << out.events << " events, " << out.batches << " batches, "
            << out.conflicts.size() << " unannotated hazard"
            << (out.conflicts.size() == 1 ? "" : "s") << ", " << out.violations.size()
            << " violation" << (out.violations.size() == 1 ? "" : "s") << "\n";
  for (const std::string& line : out.hazard_lines) {
    std::cout << "  hazard: " << line << "\n";
  }
  for (const std::string& v : out.violations) {
    std::cout << "  violation: " << v << "\n";
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

bool WriteJson(const std::string& path, const Options& opts, const ExploreReport& report) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "{\n  \"scenario\": \"" << opts.scenario << "\",\n"
      << "  \"schedules_run\": " << report.schedules_run << ",\n"
      << "  \"distinct_conflicts\": " << report.distinct_conflicts << ",\n"
      << "  \"budget_exhausted\": " << (report.budget_exhausted ? "true" : "false")
      << ",\n"
      << "  \"base_hash\": \"0x" << std::hex << report.base.state_hash << std::dec
      << "\",\n"
      << "  \"diverged\": " << (report.diverged ? "true" : "false") << ",\n";
  out << "  \"hazards\": [";
  for (size_t i = 0; i < report.base.hazard_lines.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << JsonEscape(report.base.hazard_lines[i])
        << "\"";
  }
  out << "],\n";
  out << "  \"violations\": [";
  for (size_t i = 0; i < report.base.violations.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << JsonEscape(report.base.violations[i]) << "\"";
  }
  out << "]";
  if (report.diverged) {
    out << ",\n  \"divergent_hash\": \"0x" << std::hex << report.divergent_hash
        << std::dec << "\",\n"
        << "  \"counterexample\": \"" << JsonEscape(SerializeSchedule(report.counterexample))
        << "\"";
  }
  out << "\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "dumbnet-explore: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      const char* v = need_value("--scenario");
      if (v == nullptr) {
        return Usage();
      }
      opts.scenario = v;
    } else if (arg == "--schedules") {
      const char* v = need_value("--schedules");
      if (v == nullptr) {
        return Usage();
      }
      opts.schedules = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = need_value("--seed");
      if (v == nullptr) {
        return Usage();
      }
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--inject-race") {
      opts.inject_race = true;
    } else if (arg == "--no-minimize") {
      opts.minimize = false;
    } else if (arg == "--emit-schedule") {
      const char* v = need_value("--emit-schedule");
      if (v == nullptr) {
        return Usage();
      }
      opts.emit_schedule = v;
    } else if (arg == "--replay-schedule") {
      const char* v = need_value("--replay-schedule");
      if (v == nullptr) {
        return Usage();
      }
      opts.replay_schedule = v;
    } else if (arg == "--json") {
      const char* v = need_value("--json");
      if (v == nullptr) {
        return Usage();
      }
      opts.json_path = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::cerr << "dumbnet-explore: unknown argument " << arg << "\n";
      return Usage();
    }
  }
  if (opts.scenario != "discovery" && opts.scenario != "failover" &&
      opts.scenario != "gossip") {
    std::cerr << "dumbnet-explore: unknown scenario " << opts.scenario << "\n";
    return Usage();
  }
  if (opts.schedules == 0) {
    std::cerr << "dumbnet-explore: --schedules must be >= 1\n";
    return Usage();
  }
  if (!dumbnet::footprint::kCompiledIn) {
    std::cerr << "dumbnet-explore: warning: footprints compiled out "
                 "(-DDUMBNET_FOOTPRINTS=OFF); hazards cannot be detected and no "
                 "reorderings will be generated. Schedule replay still works.\n";
  }

  auto run = [&opts](const Schedule& schedule) { return RunScenario(opts, schedule); };

  // Replay mode: one canonical run + one run under the given schedule.
  if (!opts.replay_schedule.empty()) {
    std::ifstream in(opts.replay_schedule);
    if (!in) {
      std::cerr << "dumbnet-explore: cannot read " << opts.replay_schedule << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = ParseSchedule(buf.str());
    if (!parsed.ok()) {
      std::cerr << "dumbnet-explore: " << parsed.error().ToString() << "\n";
      return 2;
    }
    RunOutcome base = run(Schedule{});
    RunOutcome replayed = run(parsed.value());
    PrintOutcome("canonical", base);
    PrintOutcome("replayed", replayed);
    const bool diverged = replayed.state_hash != base.state_hash ||
                          replayed.violations != base.violations;
    std::cout << (diverged ? "REPLAY DIVERGED: ordering race reproduced\n"
                           : "replay converged with the canonical run\n");
    return diverged || !base.conflicts.empty() ? 1 : 0;
  }

  ExploreConfig config;
  config.max_schedules = opts.schedules;
  config.minimize = opts.minimize;
  ExploreReport report = dumbnet::explore::Explore(run, config);

  PrintOutcome("base", report.base);
  std::cout << "explored " << report.schedules_run << " schedule"
            << (report.schedules_run == 1 ? "" : "s") << " (budget " << opts.schedules
            << (report.budget_exhausted ? ", exhausted" : "") << "), "
            << report.distinct_conflicts << " distinct conflicting pair"
            << (report.distinct_conflicts == 1 ? "" : "s") << "\n";

  if (report.diverged) {
    std::cout << "ORDERING RACE: divergent hash 0x" << std::hex << report.divergent_hash
              << std::dec << "\nminimized counterexample ("
              << report.counterexample.choices.size() << " batch choice"
              << (report.counterexample.choices.size() == 1 ? "" : "s") << "):\n"
              << SerializeSchedule(report.counterexample);
    for (const std::string& v : report.divergent_violations) {
      std::cout << "  divergent violation: " << v << "\n";
    }
  } else if (report.base.conflicts.empty()) {
    std::cout << "no unannotated hazards, no divergence\n";
  } else {
    std::cout << "no divergence found within budget; the hazards above remain "
                 "unannotated (fix the race or annotate DN_FP_COMMUTES with a "
                 "reason)\n";
  }

  if (!opts.emit_schedule.empty() && report.diverged) {
    std::ofstream out(opts.emit_schedule);
    if (!out) {
      std::cerr << "dumbnet-explore: cannot write " << opts.emit_schedule << "\n";
      return 2;
    }
    out << SerializeSchedule(report.counterexample);
  }
  if (!opts.json_path.empty() && !WriteJson(opts.json_path, opts, report)) {
    std::cerr << "dumbnet-explore: cannot write " << opts.json_path << "\n";
    return 2;
  }

  return report.diverged || !report.base.conflicts.empty() ? 1 : 0;
}
