// dumbnet-lint — project-specific determinism and hygiene linter.
//
// Usage:
//   dumbnet-lint [--json <path>] [paths...]
//
// Each path may be a file or a directory; directories are walked recursively
// for *.h / *.cc / *.cpp. With no paths, lints the conventional tree roots
// (src tools tests bench) relative to the current directory. Exit codes:
// 0 clean, 1 findings, 2 usage / IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/lint.h"

namespace {

namespace fs = std::filesystem;

bool HasSourceExt(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

int Usage() {
  std::cerr << "usage: dumbnet-lint [--json <path>] [file-or-dir...]\n"
            << "rules: ";
  const auto& rules = dumbnet::KnownLintRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    std::cerr << (i > 0 ? ", " : "") << rules[i];
  }
  std::cerr << "\nsuppress with: // dn-lint: allow(<rule>, <reason>)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "dumbnet-lint: --json needs a path\n";
        return Usage();
      }
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dumbnet-lint: unknown flag " << arg << "\n";
      return Usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    roots = {"src", "tools", "tests", "bench"};
  }

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end; it != end;
           it.increment(ec)) {
        if (ec) {
          std::cerr << "dumbnet-lint: error walking " << root << ": "
                    << ec.message() << "\n";
          return 2;
        }
        if (it->is_regular_file() && HasSourceExt(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "dumbnet-lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<dumbnet::LintFinding> findings;
  for (const std::string& file : files) {
    auto file_findings = dumbnet::LintFile(file);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "dumbnet-lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << dumbnet::LintFindingsJson(findings) << "\n";
  }

  std::cout << dumbnet::FormatLintFindings(findings);
  std::cout << "dumbnet-lint: " << files.size() << " files, " << findings.size()
            << " finding" << (findings.size() == 1 ? "" : "s") << "\n";
  // Exit-code contract: 1 means the lint ran and found rule violations; a file
  // that could not be read means the lint did NOT fully run — that is an IO
  // error (2), not a finding, so CI can tell "dirty tree" from "broken setup".
  for (const auto& f : findings) {
    if (f.rule == "io-error") {
      return 2;
    }
  }
  return findings.empty() ? 0 : 1;
}
