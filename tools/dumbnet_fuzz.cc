// dumbnet-fuzz — adversarial churn property fuzzer.
//
// Each seed deterministically derives a topology (leaf-spine / fat-tree /
// jellyfish), an adversarial churn schedule (flapping links, gray failures, a
// correlated switch outage; src/chaos), and a notification-delay pattern, then
// runs the full fabric through it and checks every property we know how to
// state: the invariant catalog (audited mode), footprint hazards, end-of-run
// cache convergence against ground truth, a quiescent fresh-links audit of the
// controller database, and path-graph semantics on a sample of recomputed
// graphs. Churn metrics (packets blackholed, failover-latency CDF, staleness
// windows) are recorded through the telemetry registry (--metrics-json).
//
// Any failing seed reproduces bit-identically from --replay-seed, dumps the
// flight-recorder tail, and emits a minimized schedule file compatible with
// dumbnet-explore's schedule v1 format (--emit-schedule).
//
// Usage:
//   dumbnet-fuzz [--seeds N] [--seed-base B] [--replay-seed S] [--inject-stale]
//                [--churn-during-bringup] [--horizon-ms M] [--metrics-json FILE]
//                [--json FILE] [--emit-schedule FILE] [--trace FILE]
//                [--no-minimize]
//
// --churn-during-bringup starts the churn schedule while the controller's real
// probing discovery is still in flight (instead of against an adopted,
// already-converged fabric): probes time out on downed links, bring-up port-up
// alarms interleave with flap alarms, and mid-discovery link-up events trigger
// reprobes while the initial completion callback is still pending. The run
// additionally requires that bring-up itself completed — controller ready and
// every host bootstrapped — once the schedule's final restore has settled.
//
// Exit codes: 0 all seeds clean, 1 findings, 2 usage / IO error.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/explore.h"
#include "src/analysis/fabric_check.h"
#include "src/analysis/invariants.h"
#include "src/chaos/chaos.h"
#include "src/core/fabric.h"
#include "src/sim/footprint.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/topo/generators.h"
#include "src/topo/serialize.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace {

using dumbnet::LinkEventPayload;
using dumbnet::LinkIndex;
using dumbnet::Rng;
using dumbnet::SimulatedFabric;
using dumbnet::SplitMix64;
using dumbnet::TimeNs;
using dumbnet::Topology;

struct Options {
  uint64_t seeds = 25;
  uint64_t seed_base = 1;
  // DES shard count for each run (0 = DUMBNET_SHARDS env, unset -> 1). Results
  // are bit-identical across shard counts; CI fuzzes both to prove it.
  uint32_t shards = 1;
  uint64_t replay_seed = 0;
  bool replay_mode = false;
  bool inject_stale = false;
  bool churn_during_bringup = false;
  bool minimize = true;
  uint64_t horizon_ms = 60;
  std::string metrics_json;
  std::string json_path;
  std::string emit_schedule;
  std::string trace_path;
};

int Usage() {
  std::cerr
      << "usage: dumbnet-fuzz [--seeds N] [--seed-base B] [--replay-seed S]\n"
      << "                    [--inject-stale] [--churn-during-bringup]\n"
      << "                    [--horizon-ms M] [--metrics-json FILE] [--json FILE]\n"
      << "                    [--emit-schedule FILE] [--trace FILE] [--no-minimize]\n"
      << "                    [--shards K]\n"
      << "exit codes: 0 clean, 1 findings, 2 usage/io error\n";
  return 2;
}

uint64_t Fnv1a(const std::string& bytes, uint64_t h = 0xCBF29CE484222325ULL) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

struct FootprintRun {
  FootprintRun() { dumbnet::footprint::SetEnabled(true); }
  ~FootprintRun() { dumbnet::footprint::SetEnabled(false); }
};

// Seed -> topology. Mixes the three evaluation shapes; jellyfish draws are
// retried with perturbed wiring seeds until connected (fallback: leaf-spine).
Topology TopologyForSeed(uint64_t seed) {
  Rng rng(seed ^ 0x70B07070B07070ULL);
  switch (seed % 3) {
    case 0: {
      dumbnet::LeafSpineConfig cfg;
      cfg.num_spine = 2 + static_cast<uint32_t>(rng.UniformInt(3));
      cfg.num_leaf = 4 + static_cast<uint32_t>(rng.UniformInt(4));
      cfg.hosts_per_leaf = 3;
      auto t = dumbnet::MakeLeafSpine(cfg);
      if (t.ok()) {
        return std::move(t.value().topo);
      }
      break;
    }
    case 1: {
      dumbnet::FatTreeConfig cfg;
      cfg.k = 4;
      auto t = dumbnet::MakeFatTree(cfg);
      if (t.ok()) {
        return std::move(t.value().topo);
      }
      break;
    }
    default: {
      dumbnet::JellyfishConfig cfg;
      cfg.num_switches = 12 + static_cast<uint32_t>(rng.UniformInt(9));
      cfg.switch_ports = 16;
      cfg.network_degree = 4;
      cfg.hosts_per_switch = 2;
      for (uint32_t attempt = 0; attempt < 5; ++attempt) {
        cfg.seed = seed + attempt * 0x9E3779B9ULL;
        auto t = dumbnet::MakeJellyfish(cfg);
        if (t.ok() && t.value().topo.IsConnected()) {
          return std::move(t.value().topo);
        }
      }
      break;
    }
  }
  auto fallback = dumbnet::MakeLeafSpine(dumbnet::LeafSpineConfig{});
  return std::move(fallback.value().topo);
}

dumbnet::chaos::ChaosConfig ChaosConfigForSeed(uint64_t seed, uint64_t horizon_ms) {
  Rng rng(seed ^ 0xC4A05C4A05C4A05ULL);
  dumbnet::chaos::ChaosConfig cfg;
  cfg.seed = seed;
  cfg.horizon = dumbnet::Ms(static_cast<int64_t>(horizon_ms));
  cfg.flap.links = 1 + static_cast<uint32_t>(rng.UniformInt(3));
  cfg.gray.links = 1 + static_cast<uint32_t>(rng.UniformInt(2));
  cfg.outage.enabled = (rng.Next64() & 1) != 0;
  return cfg;
}

struct SeedResult {
  uint64_t digest = 0;
  uint64_t events = 0;
  TimeNs end_time = 0;
  std::vector<std::string> failures;
  dumbnet::chaos::ChaosSchedule schedule;  // the schedule that actually ran
};

// One full deterministic run of `seed`. When `override_sched` is set it runs
// instead of the generated schedule (replaying minimization candidates).
SeedResult RunSeed(uint64_t seed, const Options& opts,
                   const dumbnet::chaos::ChaosSchedule* override_sched) {
  SeedResult out;
  Topology topo = TopologyForSeed(seed);
  out.schedule = override_sched != nullptr
                     ? *override_sched
                     : dumbnet::chaos::GenerateSchedule(
                           topo, ChaosConfigForSeed(seed, opts.horizon_ms));
  const std::vector<LinkIndex> touched = out.schedule.TouchedLinks();
  if (touched.empty() && override_sched == nullptr) {
    out.failures.push_back("generator produced an empty schedule");
    return out;
  }

  // --inject-stale fixture: at the controller host, every "up" notification
  // for the victim link is eaten — a deterministic ghost-topology bug the
  // convergence check must catch.
  uint64_t stale_uid_a = 0, stale_uid_b = 0;
  dumbnet::PortNum stale_port_a = 0, stale_port_b = 0;
  if (opts.inject_stale && !touched.empty()) {
    const dumbnet::Link& victim = topo.link_at(touched.front());
    stale_uid_a = topo.switch_at(victim.a.node.index).uid;
    stale_port_a = victim.a.port;
    stale_uid_b = topo.switch_at(victim.b.node.index).uid;
    stale_port_b = victim.b.port;
  }

  dumbnet::HostAgentConfig agent_config;
  agent_config.rng_seed = seed ^ 0xA6E7A6E7A6E7ULL;
  dumbnet::NetworkConfig net_config;
  net_config.gray_seed = seed ^ 0xD0BBE701ULL;
  SimulatedFabric fabric(std::move(topo), agent_config, dumbnet::DumbSwitchConfig(),
                         net_config, opts.shards);
  FootprintRun fp_on;
  dumbnet::explore::HazardCollector collector(&fabric.sim());

  // Notification interceptor: seeded delays (reordering stress) on every host;
  // pure function of (seed, mac, event) so replays are bit-identical. Drops are
  // reserved for the --inject-stale fixture — a random drop could legitimately
  // lose the last copy of an event and break convergence by design.
  const uint64_t delay_seed = seed * 0x2545F4914F6CDD1DULL;
  for (uint32_t h = 0; h < static_cast<uint32_t>(fabric.host_count()); ++h) {
    dumbnet::HostAgent& agent = fabric.agent(h);
    const uint64_t mac = agent.mac();
    const bool is_ctrl = (h == 0);
    agent.SetNotificationInterceptor(
        [delay_seed, mac, is_ctrl, stale_uid_a, stale_port_a, stale_uid_b, stale_port_b](
            const LinkEventPayload& ev, bool from_fabric) -> TimeNs {
          if (is_ctrl && ev.up &&
              ((ev.switch_uid == stale_uid_a && ev.port == stale_port_a) ||
               (ev.switch_uid == stale_uid_b && ev.port == stale_port_b))) {
            return dumbnet::HostAgent::kDropNotification;
          }
          SplitMix64 mix(delay_seed ^ mac ^ ev.event_id ^
                         (from_fabric ? 0x9E3779B97F4A7C15ULL : 0));
          const uint64_t d = mix.Next();
          if (d % 4 == 0) {
            return static_cast<TimeNs>(1 + d % 200000);  // up to 200 us
          }
          return 0;
        });
    // Failover-latency CDF: virtual time from the event's origin to this
    // host learning about it, for down events (the failover-relevant ones).
    dumbnet::HostAgent* agent_ptr = &agent;
    agent.SetLinkEventHook([agent_ptr](const LinkEventPayload& ev, bool /*from_fabric*/) {
      if (!ev.up) {
        DN_HISTOGRAM_RECORD("chaos.failover_latency_ns",
                            static_cast<double>(agent_ptr->sim().Now() - ev.origin_time));
      }
    });
  }

  dumbnet::ControllerConfig ctrl_config;
  ctrl_config.rng_seed = seed;
  bool controller_ready = false;
  if (opts.churn_during_bringup) {
    // Churn races real probing discovery: Start() is issued but the fabric is
    // NOT run to readiness first — the schedule below interleaves with the
    // probe/attach traffic. The periodic db-vs-truth audit is structural, so a
    // half-discovered database is legal; completeness is asserted at the end.
    fabric.AddController(0, ctrl_config);
    fabric.EnableAuditing(2048);
    fabric.controller().Start([&controller_ready] { controller_ready = true; });
  } else {
    fabric.BringUpAdopted(0, ctrl_config);
    fabric.EnableAuditing(2048);
    controller_ready = true;
  }

  const uint64_t blackholed_before =
      fabric.net().stats().dropped_link_down + fabric.net().stats().dropped_gray;

  // Background traffic at every action boundary plus periodic staleness probes.
  Rng traffic = Rng(seed).Fork(2);
  uint64_t next_flow = 1;
  uint64_t stale_samples = 0;
  dumbnet::chaos::RunHooks hooks;
  hooks.on_boundary = [&](TimeNs) {
    const uint32_t hosts = static_cast<uint32_t>(fabric.host_count());
    if (hosts < 2) {
      return;
    }
    for (int i = 0; i < 2; ++i) {
      const uint32_t src = static_cast<uint32_t>(traffic.UniformInt(hosts));
      uint32_t dst = static_cast<uint32_t>(traffic.UniformInt(hosts - 1));
      if (dst >= src) {
        ++dst;
      }
      (void)fabric.agent(src).Send(fabric.agent(dst).mac(), next_flow++,
                                   dumbnet::DataPayload{});
    }
  };
  hooks.sample_period = dumbnet::Ms(1);
  hooks.on_sample = [&](TimeNs) {
    const uint32_t stale = dumbnet::chaos::CountStaleEntries(fabric, touched);
    DN_HISTOGRAM_RECORD("chaos.stale_entries", static_cast<double>(stale));
    if (stale > 0) {
      ++stale_samples;
    }
  };

  dumbnet::chaos::RunSchedule(fabric, out.schedule, hooks);

  // Staleness window: total sampled virtual time any cache disagreed with
  // ground truth about a churned link.
  DN_COUNTER_INC_N("chaos.staleness_ns",
                   stale_samples * static_cast<uint64_t>(hooks.sample_period));
  const uint64_t blackholed =
      fabric.net().stats().dropped_link_down + fabric.net().stats().dropped_gray -
      blackholed_before;
  DN_COUNTER_INC_N("chaos.blackholed", blackholed);
  DN_COUNTER_INC("chaos.runs");

  // --- Property checks, all at quiescence --------------------------------------
  // Under --churn-during-bringup the schedule's final restore leaves a fully
  // healthy fabric, so no matter how churn mangled discovery, bring-up must
  // still have completed end to end by now.
  if (opts.churn_during_bringup) {
    if (!controller_ready) {
      out.failures.push_back("bringup: controller never became ready under churn");
    }
    for (uint32_t host = 0; host < static_cast<uint32_t>(fabric.host_count()); ++host) {
      if (!fabric.agent(host).bootstrapped()) {
        out.failures.push_back("bringup: host " + std::to_string(host) +
                               " never bootstrapped under churn");
      }
    }
  }
  if (fabric.auditor() != nullptr) {
    fabric.auditor()->RunAll();
    for (const auto& v : fabric.auditor()->violations()) {
      out.failures.push_back("invariant " + v.invariant + ": " + v.detail);
    }
  }
  for (const std::string& line : collector.TakeLines()) {
    out.failures.push_back("hazard: " + line);
  }
  for (const std::string& line : dumbnet::chaos::CheckConvergence(fabric, touched)) {
    out.failures.push_back("convergence: " + line);
  }
  auto fresh = dumbnet::AuditTopoDbAgainstTruth(fabric.controller().db(), fabric.topo(),
                                                /*require_fresh_links=*/true);
  if (!fresh.ok()) {
    out.failures.push_back("ghost-topology: " + fresh.error().ToString());
  }

  // Path-graph semantics on a recomputed sample (src host 1 -> a few peers).
  if (fabric.host_count() >= 3) {
    std::vector<uint64_t> dsts;
    for (uint32_t h = 2; h < static_cast<uint32_t>(fabric.host_count()) && dsts.size() < 4;
         ++h) {
      dsts.push_back(fabric.agent(h).mac());
    }
    auto graphs = fabric.controller().PrecomputePathGraphs(fabric.agent(1).mac(), dsts);
    if (!graphs.ok()) {
      out.failures.push_back("pathgraph: " + graphs.error().ToString());
    } else {
      for (const auto& f : dumbnet::CheckPathGraphs(fabric.topo(), graphs.value())) {
        out.failures.push_back("pathgraph " + f.check + ": " + f.detail);
      }
      for (const auto& f :
           dumbnet::VerifyPathGraphSemantics(fabric.topo(), graphs.value())) {
        out.failures.push_back("pathgraph-semantics " + f.check + ": " + f.detail);
      }
    }
  }

  // Converged control-plane digest (the bit-identical replay witness).
  uint64_t h = Fnv1a(dumbnet::SerializeTopology(fabric.controller().db().mirror()));
  for (uint32_t host = 0; host < static_cast<uint32_t>(fabric.host_count()); ++host) {
    h = Fnv1a(dumbnet::SerializeTopology(fabric.agent(host).topo_cache().db().mirror()),
              h);
  }
  out.digest = h;
  out.events = fabric.executed_events();
  out.end_time = fabric.Now();
  return out;
}

void ReportFailingSeed(uint64_t seed, const SeedResult& result, const Options& opts) {
  std::cout << "FAIL seed " << seed << " (" << result.failures.size() << " finding"
            << (result.failures.size() == 1 ? "" : "s") << ", digest 0x" << std::hex
            << result.digest << std::dec << ")\n";
  for (const std::string& f : result.failures) {
    std::cout << "  " << f << "\n";
  }
  std::cout << "  reproduce: dumbnet-fuzz --replay-seed " << seed
            << (opts.inject_stale ? " --inject-stale" : "")
            << (opts.churn_during_bringup ? " --churn-during-bringup" : "")
            << " --horizon-ms " << opts.horizon_ms << "\n";

  dumbnet::chaos::ChaosSchedule minimized = result.schedule;
  if (opts.minimize) {
    auto still_fails = [&](const dumbnet::chaos::ChaosSchedule& cand) {
      return !RunSeed(seed, opts, &cand).failures.empty();
    };
    minimized = dumbnet::chaos::MinimizeSchedule(result.schedule, still_fails,
                                                 /*max_probes=*/48);
    std::cout << "  minimized schedule: " << minimized.actions.size() << " of "
              << result.schedule.actions.size() << " actions still fail\n";
  }
  if (!opts.emit_schedule.empty()) {
    std::ofstream sched_out(opts.emit_schedule);
    if (sched_out) {
      sched_out << dumbnet::chaos::SerializeSchedule(minimized,
                                                     "seed " + std::to_string(seed));
      std::cout << "  schedule written to " << opts.emit_schedule << "\n";
    } else {
      std::cerr << "dumbnet-fuzz: cannot write " << opts.emit_schedule << "\n";
    }
  }
  dumbnet::telemetry::FlightRecorder::Global().DumpOnFailure("dumbnet-fuzz failing seed",
                                                             64);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

bool WriteJsonSummary(const std::string& path, uint64_t seeds_run,
                      const std::vector<uint64_t>& failing,
                      const std::vector<std::string>& first_failure_lines) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "{\n  \"seeds_run\": " << seeds_run << ",\n  \"failing_seeds\": [";
  for (size_t i = 0; i < failing.size(); ++i) {
    out << (i > 0 ? ", " : "") << failing[i];
  }
  out << "],\n  \"first_failure\": [";
  for (size_t i = 0; i < first_failure_lines.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << JsonEscape(first_failure_lines[i]) << "\"";
  }
  out << "]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "dumbnet-fuzz: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      const char* v = need_value("--seeds");
      if (v == nullptr) {
        return Usage();
      }
      opts.seeds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed-base") {
      const char* v = need_value("--seed-base");
      if (v == nullptr) {
        return Usage();
      }
      opts.seed_base = std::strtoull(v, nullptr, 10);
    } else if (arg == "--replay-seed") {
      const char* v = need_value("--replay-seed");
      if (v == nullptr) {
        return Usage();
      }
      opts.replay_seed = std::strtoull(v, nullptr, 10);
      opts.replay_mode = true;
    } else if (arg == "--inject-stale") {
      opts.inject_stale = true;
    } else if (arg == "--churn-during-bringup") {
      opts.churn_during_bringup = true;
    } else if (arg == "--no-minimize") {
      opts.minimize = false;
    } else if (arg == "--shards") {
      const char* v = need_value("--shards");
      if (v == nullptr) {
        return Usage();
      }
      opts.shards = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--horizon-ms") {
      const char* v = need_value("--horizon-ms");
      if (v == nullptr) {
        return Usage();
      }
      opts.horizon_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--metrics-json") {
      const char* v = need_value("--metrics-json");
      if (v == nullptr) {
        return Usage();
      }
      opts.metrics_json = v;
    } else if (arg == "--json") {
      const char* v = need_value("--json");
      if (v == nullptr) {
        return Usage();
      }
      opts.json_path = v;
    } else if (arg == "--emit-schedule") {
      const char* v = need_value("--emit-schedule");
      if (v == nullptr) {
        return Usage();
      }
      opts.emit_schedule = v;
    } else if (arg == "--trace") {
      const char* v = need_value("--trace");
      if (v == nullptr) {
        return Usage();
      }
      opts.trace_path = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::cerr << "dumbnet-fuzz: unknown argument " << arg << "\n";
      return Usage();
    }
  }
  if (opts.seeds == 0 || opts.horizon_ms < 20) {
    std::cerr << "dumbnet-fuzz: --seeds must be >= 1 and --horizon-ms >= 20\n";
    return Usage();
  }

  dumbnet::telemetry::SetEnabled(true);
  // Hosts legitimately give up on paths mid-churn; per-flow warnings would
  // swamp CI logs. Findings are reported through the property checks instead.
  dumbnet::SetLogLevel(dumbnet::LogLevel::kError);
  if (!dumbnet::footprint::kCompiledIn) {
    std::cerr << "dumbnet-fuzz: warning: footprints compiled out "
                 "(-DDUMBNET_FOOTPRINTS=OFF); ordering hazards cannot be detected.\n";
  }

  int exit_code = 0;
  uint64_t seeds_run = 0;
  std::vector<uint64_t> failing_seeds;
  std::vector<std::string> first_failure;

  if (opts.replay_mode) {
    // Replay: the same seed twice must be bit-identical — digest, event count,
    // and final virtual time all agree — and findings are reported as usual.
    SeedResult first = RunSeed(opts.replay_seed, opts, nullptr);
    SeedResult second = RunSeed(opts.replay_seed, opts, nullptr);
    seeds_run = 2;
    std::cout << "replay seed " << opts.replay_seed << ": digest 0x" << std::hex
              << first.digest << std::dec << ", " << first.events << " events, end "
              << first.end_time << " ns\n";
    if (first.digest != second.digest || first.events != second.events ||
        first.end_time != second.end_time) {
      std::cout << "REPLAY NOT REPRODUCIBLE: second run digest 0x" << std::hex
                << second.digest << std::dec << ", " << second.events << " events, end "
                << second.end_time << " ns\n";
      exit_code = 1;
    } else {
      std::cout << "replay bit-identical across both runs\n";
    }
    if (!first.failures.empty()) {
      failing_seeds.push_back(opts.replay_seed);
      first_failure = first.failures;
      ReportFailingSeed(opts.replay_seed, first, opts);
      exit_code = 1;
    }
  } else {
    for (uint64_t s = 0; s < opts.seeds; ++s) {
      const uint64_t seed = opts.seed_base + s;
      SeedResult result = RunSeed(seed, opts, nullptr);
      ++seeds_run;
      if (!result.failures.empty()) {
        failing_seeds.push_back(seed);
        if (first_failure.empty()) {
          first_failure = result.failures;
        }
        ReportFailingSeed(seed, result, opts);
        exit_code = 1;
        break;  // first failing seed stops the run; artifacts describe it
      }
    }
    if (exit_code == 0) {
      std::cout << "fuzz: " << seeds_run << " seed" << (seeds_run == 1 ? "" : "s")
                << " clean (base " << opts.seed_base << ", horizon " << opts.horizon_ms
                << " ms)\n";
    }
  }

  if (!opts.metrics_json.empty() &&
      !dumbnet::telemetry::MetricsRegistry::Global().WriteJsonFile(opts.metrics_json)) {
    std::cerr << "dumbnet-fuzz: cannot write " << opts.metrics_json << "\n";
    return 2;
  }
  if (!opts.trace_path.empty() &&
      !dumbnet::telemetry::FlightRecorder::Global().SaveTo(opts.trace_path)) {
    std::cerr << "dumbnet-fuzz: cannot write " << opts.trace_path << "\n";
    return 2;
  }
  if (!opts.json_path.empty() &&
      !WriteJsonSummary(opts.json_path, seeds_run, failing_seeds, first_failure)) {
    std::cerr << "dumbnet-fuzz: cannot write " << opts.json_path << "\n";
    return 2;
  }
  return exit_code;
}
