// dumbnet_topo: command-line utility for topology files.
//
//   dumbnet_topo gen fattree <k> out.topo
//   dumbnet_topo gen leafspine <spines> <leaves> <hosts_per_leaf> out.topo
//   dumbnet_topo gen cube <nx> <ny> <nz> out.topo
//   dumbnet_topo gen jellyfish <switches> <degree> <seed> out.topo
//   dumbnet_topo info file.topo        # counts, connectivity, degree histogram
//   dumbnet_topo validate file.topo    # structural invariants
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/topo/generators.h"
#include "src/topo/serialize.h"

using namespace dumbnet;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dumbnet_topo gen fattree <k> <out>\n"
               "  dumbnet_topo gen leafspine <spines> <leaves> <hosts_per_leaf> <out>\n"
               "  dumbnet_topo gen cube <nx> <ny> <nz> <out>\n"
               "  dumbnet_topo gen jellyfish <switches> <degree> <seed> <out>\n"
               "  dumbnet_topo info <file>\n"
               "  dumbnet_topo validate <file>\n");
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  const std::string kind = argv[2];
  Result<Topology> topo = Error(ErrorCode::kInvalidArgument, "unknown generator");
  std::string out;
  if (kind == "fattree" && argc == 5) {
    FatTreeConfig config;
    config.k = static_cast<uint32_t>(std::atoi(argv[3]));
    auto r = MakeFatTree(config);
    topo = r.ok() ? Result<Topology>(std::move(r.value().topo)) : Result<Topology>(r.error());
    out = argv[4];
  } else if (kind == "leafspine" && argc == 7) {
    LeafSpineConfig config;
    config.num_spine = static_cast<uint32_t>(std::atoi(argv[3]));
    config.num_leaf = static_cast<uint32_t>(std::atoi(argv[4]));
    config.hosts_per_leaf = static_cast<uint32_t>(std::atoi(argv[5]));
    auto r = MakeLeafSpine(config);
    topo = r.ok() ? Result<Topology>(std::move(r.value().topo)) : Result<Topology>(r.error());
    out = argv[6];
  } else if (kind == "cube" && argc == 7) {
    CubeConfig config;
    config.dims = {static_cast<uint32_t>(std::atoi(argv[3])),
                   static_cast<uint32_t>(std::atoi(argv[4])),
                   static_cast<uint32_t>(std::atoi(argv[5]))};
    auto r = MakeCube(config);
    topo = r.ok() ? Result<Topology>(std::move(r.value().topo)) : Result<Topology>(r.error());
    out = argv[6];
  } else if (kind == "jellyfish" && argc == 7) {
    JellyfishConfig config;
    config.num_switches = static_cast<uint32_t>(std::atoi(argv[3]));
    config.network_degree = static_cast<uint8_t>(std::atoi(argv[4]));
    config.seed = static_cast<uint64_t>(std::atoll(argv[5]));
    auto r = MakeJellyfish(config);
    topo = r.ok() ? Result<Topology>(std::move(r.value().topo)) : Result<Topology>(r.error());
    out = argv[6];
  } else {
    return Usage();
  }
  if (!topo.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", topo.error().ToString().c_str());
    return 1;
  }
  if (Status s = SaveTopology(topo.value(), out); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.error().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu switches, %zu hosts, %zu links\n", out.c_str(),
              topo.value().switch_count(), topo.value().host_count(),
              topo.value().link_count());
  return 0;
}

int Info(const char* path) {
  auto topo = LoadTopology(path);
  if (!topo.ok()) {
    std::fprintf(stderr, "%s\n", topo.error().ToString().c_str());
    return 1;
  }
  const Topology& t = topo.value();
  std::printf("switches: %zu\nhosts:    %zu\nlinks:    %zu (%zu inter-switch)\n",
              t.switch_count(), t.host_count(), t.link_count(), t.InterSwitchLinkCount());
  std::printf("connected fabric: %s\n", t.IsConnected() ? "yes" : "NO");
  size_t down = 0;
  for (LinkIndex li = 0; li < t.link_count(); ++li) {
    down += t.link_at(li).up ? 0u : 1u;
  }
  std::printf("links down: %zu\n", down);
  // Degree histogram over wired switch ports.
  size_t max_degree = 0;
  std::vector<size_t> degree(t.switch_count(), 0);
  for (uint32_t s = 0; s < t.switch_count(); ++s) {
    for (PortNum p = 1; p <= t.switch_at(s).num_ports; ++p) {
      degree[s] += t.LinkAtPort(s, p) != kInvalidLink ? 1u : 0u;
    }
    max_degree = std::max(max_degree, degree[s]);
  }
  std::vector<size_t> histogram(max_degree + 1, 0);
  for (size_t d : degree) {
    ++histogram[d];
  }
  std::printf("wired-port degree histogram:\n");
  for (size_t d = 0; d <= max_degree; ++d) {
    if (histogram[d] > 0) {
      std::printf("  %zu ports: %zu switches\n", d, histogram[d]);
    }
  }
  return 0;
}

int Validate(const char* path) {
  auto topo = LoadTopology(path);
  if (!topo.ok()) {
    std::fprintf(stderr, "%s\n", topo.error().ToString().c_str());
    return 1;
  }
  Status s = topo.value().Validate();
  if (!s.ok()) {
    std::fprintf(stderr, "INVALID: %s\n", s.error().ToString().c_str());
    return 1;
  }
  std::printf("ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  if (std::strcmp(argv[1], "gen") == 0) {
    return Generate(argc, argv);
  }
  if (std::strcmp(argv[1], "info") == 0 && argc == 3) {
    return Info(argv[2]);
  }
  if (std::strcmp(argv[1], "validate") == 0 && argc == 3) {
    return Validate(argv[2]);
  }
  return Usage();
}
