// dumbnet-trace: inspect flight-recorder dumps and gate telemetry metrics.
//
// Usage:
//   dumbnet-trace <dump> [options]
//
//   <dump>                     "dumbnet-flight-recorder v1" text dump, as
//                              written by FlightRecorder::SaveTo() (e.g. via
//                              examples/failure_recovery --trace out.fr).
//   --chrome <out.json>        convert the dump to Chrome trace_event JSON;
//                              open with chrome://tracing or Perfetto.
//   --top <N>                  print a per-component summary and the N busiest
//                              (component, kind) pairs (default 10).
//   --require-components <N>   fail (exit 1) unless events from at least N
//                              distinct components are present.
//   --metrics <metrics.json>   telemetry registry JSON (--metrics-json output)
//                              for the assertions below.
//   --require-nonzero <a,b>    fail unless each named metric is present and > 0.
//   --require-zero <a,b>       fail unless each named metric is absent or == 0.
//
// Exit codes: 0 success, 1 assertion failed, 2 usage / I/O / parse error.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/telemetry/flight_recorder.h"

using dumbnet::telemetry::TraceDump;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dump> [--chrome out.json] [--top N]\n"
               "          [--require-components N]\n"
               "          [--metrics metrics.json] [--require-nonzero a,b]\n"
               "          [--require-zero a,b]\n",
               argv0);
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
      }
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

// Finds `"name": <number>` in the registry JSON (our own WriteJson output —
// names never contain quotes, numeric values only). Returns false when absent.
bool FindMetric(const std::string& json, const std::string& name, double* value) {
  std::string needle = "\"" + name + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  pos += needle.size();
  while (pos < json.size() && std::isspace(static_cast<unsigned char>(json[pos]))) {
    ++pos;
  }
  // Histograms map to an object; gate on its "count" field.
  if (pos < json.size() && json[pos] == '{') {
    size_t count_pos = json.find("\"count\":", pos);
    if (count_pos == std::string::npos) {
      return false;
    }
    pos = count_pos + std::strlen("\"count\":");
  }
  char* end = nullptr;
  double v = std::strtod(json.c_str() + pos, &end);
  if (end == json.c_str() + pos) {
    return false;
  }
  *value = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage(argv[0]);
    return 2;
  }
  std::string dump_path = argv[1];
  std::string chrome_path;
  std::string metrics_path;
  size_t top_n = 10;
  bool want_top = false;
  int require_components = 0;
  std::vector<std::string> require_nonzero;
  std::vector<std::string> require_zero;

  for (int i = 2; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs an argument\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--chrome") == 0) {
      chrome_path = next("--chrome");
    } else if (std::strcmp(argv[i], "--top") == 0) {
      top_n = static_cast<size_t>(std::strtoul(next("--top"), nullptr, 10));
      want_top = true;
    } else if (std::strcmp(argv[i], "--require-components") == 0) {
      require_components = std::atoi(next("--require-components"));
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path = next("--metrics");
    } else if (std::strcmp(argv[i], "--require-nonzero") == 0) {
      for (auto& m : SplitCommas(next("--require-nonzero"))) {
        require_nonzero.push_back(m);
      }
    } else if (std::strcmp(argv[i], "--require-zero") == 0) {
      for (auto& m : SplitCommas(next("--require-zero"))) {
        require_zero.push_back(m);
      }
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  std::ifstream in(dump_path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv[0], dump_path.c_str());
    return 2;
  }
  TraceDump dump;
  std::string error;
  if (!TraceDump::Load(in, &dump, &error)) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], dump_path.c_str(), error.c_str());
    return 2;
  }

  std::set<dumbnet::telemetry::Component> components;
  for (const auto& ev : dump.events) {
    components.insert(ev.component);
  }
  std::printf("%s: %zu events, %zu components\n", dump_path.c_str(),
              dump.events.size(), components.size());

  if (want_top || (chrome_path.empty() && metrics_path.empty() &&
                   require_components == 0)) {
    dumbnet::telemetry::PrintTopReport(std::cout, dump.events, top_n);
  }

  if (!chrome_path.empty()) {
    std::ofstream out(chrome_path);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0], chrome_path.c_str());
      return 2;
    }
    dumbnet::telemetry::WriteChromeTrace(out, dump.events);
    std::printf("wrote Chrome trace (%zu events) to %s — open via chrome://tracing\n",
                dump.events.size(), chrome_path.c_str());
  }

  bool failed = false;
  if (require_components > 0 &&
      components.size() < static_cast<size_t>(require_components)) {
    std::fprintf(stderr, "FAIL: %zu distinct components in trace, need >= %d\n",
                 components.size(), require_components);
    failed = true;
  }

  if (!require_nonzero.empty() || !require_zero.empty()) {
    if (metrics_path.empty()) {
      std::fprintf(stderr, "%s: --require-nonzero/--require-zero need --metrics\n",
                   argv[0]);
      return 2;
    }
    std::ifstream mf(metrics_path);
    if (!mf) {
      std::fprintf(stderr, "%s: cannot open %s\n", argv[0], metrics_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << mf.rdbuf();
    std::string json = ss.str();
    for (const auto& name : require_nonzero) {
      double v = 0;
      if (!FindMetric(json, name, &v)) {
        std::fprintf(stderr, "FAIL: metric %s not found in %s\n", name.c_str(),
                     metrics_path.c_str());
        failed = true;
      } else if (v <= 0) {
        std::fprintf(stderr, "FAIL: metric %s = %g, need > 0\n", name.c_str(), v);
        failed = true;
      } else {
        std::printf("ok: %s = %g\n", name.c_str(), v);
      }
    }
    for (const auto& name : require_zero) {
      double v = 0;
      if (FindMetric(json, name, &v) && v != 0) {
        std::fprintf(stderr, "FAIL: metric %s = %g, need 0\n", name.c_str(), v);
        failed = true;
      } else {
        std::printf("ok: %s = %g\n", name.c_str(), v);
      }
    }
  }

  if (failed) {
    return 1;
  }
  if (require_components > 0) {
    std::printf("ok: %zu components >= %d required\n", components.size(),
                require_components);
  }
  return 0;
}
