#!/usr/bin/env bash
# Run clang-tidy over the project (or over files changed vs a base ref).
#
# Usage:
#   tools/run_tidy.sh                 # whole tree (src/ tests/ tools/)
#   tools/run_tidy.sh --ci            # whole tree; missing clang-tidy is an error
#   tools/run_tidy.sh --diff origin/main   # only files changed vs the ref
#   tools/run_tidy.sh src/routing/tags.cc  # explicit file list
#
# Needs a compile_commands.json; one is generated into build-tidy/ if missing.
# Outside --ci mode, exits 0 with a notice when clang-tidy is not installed, so
# the script is safe to call from environments (like the dev container) without
# clang tooling. In --ci mode a missing clang-tidy is a hard failure: the gate
# must never silently pass.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

ci_mode=0
if [[ "${1:-}" == "--ci" ]]; then
  ci_mode=1
  shift
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  if [[ $ci_mode -eq 1 ]]; then
    echo "run_tidy.sh: clang-tidy not found on PATH but --ci requires it." >&2
    exit 1
  fi
  echo "run_tidy.sh: clang-tidy not found on PATH; skipping (install clang-tidy to enable)." >&2
  exit 0
fi

build_dir="build-tidy"
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

files=()
if [[ "${1:-}" == "--diff" ]]; then
  base="${2:?usage: run_tidy.sh --diff <base-ref>}"
  while IFS= read -r f; do
    [[ -f "$f" ]] && files+=("$f")
  done < <(git diff --name-only --diff-filter=ACMR "$base" -- '*.cc' '*.h')
  if [[ ${#files[@]} -eq 0 ]]; then
    echo "run_tidy.sh: no C++ files changed vs $base."
    exit 0
  fi
elif [[ $# -gt 0 ]]; then
  files=("$@")
else
  while IFS= read -r f; do
    files+=("$f")
  done < <(git ls-files 'src/*.cc' 'tests/*.cc' 'tools/*.cc')
fi

echo "run_tidy.sh: checking ${#files[@]} file(s)..."
status=0
for f in "${files[@]}"; do
  # Headers are covered via HeaderFilterRegex when their .cc is checked.
  [[ "$f" == *.h ]] && continue
  clang-tidy -p "$build_dir" --quiet "$f" || status=1
done
exit $status
