// dumbnet-net: boot a DumbNet fabric as a real userspace deployment and prove
// it works end to end.
//
// Every switch and host runs as its own thread; every link is a real socket
// (Unix-domain by default, localhost TCP with --transport tcp). The tool
//   1. wires the fabric and runs the controller's probing discovery to full
//      adoption (every host bootstrapped with tag paths + directory),
//   2. serves an echo ping sweep across host pairs and verifies provenance:
//      each data packet must have traversed exactly the switch path its sender
//      was promised (host.path_divergence stays zero),
//   3. kills a live inter-switch link on the active path and measures how long
//      until host failover restores connectivity,
//   4. shuts everything down cleanly.
//
// Usage:
//   dumbnet-net [--topo testbed|<file>] [--transport uds|tcp]
//               [--uds-dir <dir>] [--tcp-base-port <port>]
//               [--pings <n>] [--skip-failover] [--metrics-json <path>]
//
// --topo testbed (default) is a 3-switch triangle with two hosts per switch —
// small enough to bring up in about a second, rich enough to have a backup
// path for every flow. Any dumbnet-topo file works too (see dumbnet-topo).
//
// Exit codes: 0 all checks passed, 1 a check failed, 2 usage / IO error.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/telemetry/telemetry.h"
#include "src/topo/serialize.h"
#include "src/topo/topology.h"
#include "src/util/logging.h"
#include "src/util/result.h"
#include "src/wire/clock.h"
#include "src/wire/runtime.h"

namespace dumbnet {
namespace {

using wire::MonotonicNowNs;
using wire::PingOutcome;
using wire::SleepNs;
using wire::TransportKind;
using wire::WireFabric;
using wire::WireFabricOptions;

int Usage() {
  std::fprintf(
      stderr,
      "usage: dumbnet-net [--topo testbed|<file>] [--transport uds|tcp]\n"
      "                   [--uds-dir <dir>] [--tcp-base-port <port>]\n"
      "                   [--pings <n>] [--skip-failover]\n"
      "                   [--metrics-json <path>]\n"
      "exit codes: 0 all checks passed, 1 check failed, 2 usage/io error\n");
  return 2;
}

struct Options {
  std::string topo = "testbed";
  TransportKind transport = TransportKind::kUds;
  std::string uds_dir;
  uint16_t tcp_base_port = 18300;
  int pings = 2;  // unpinned pings per ordered host pair
  bool skip_failover = false;
  std::string metrics_path;
};

// The default fabric: three switches in a triangle, two hosts each. Every
// host pair has a one-link backup path, so any single inter-switch failure is
// survivable — which is exactly what the failover drill exercises.
Topology MakeTriangleTestbed() {
  Topology topo;
  const uint32_t s0 = topo.AddSwitch(8);
  const uint32_t s1 = topo.AddSwitch(8);
  const uint32_t s2 = topo.AddSwitch(8);
  (void)topo.ConnectSwitches(s0, 1, s1, 1);
  (void)topo.ConnectSwitches(s1, 2, s2, 1);
  (void)topo.ConnectSwitches(s2, 2, s0, 2);
  for (uint32_t sw : {s0, s1, s2}) {
    for (PortNum port = 3; port <= 4; ++port) {
      (void)topo.AttachHost(topo.AddHost(), sw, port);
    }
  }
  return topo;
}

// Discovery probes every port up to max_ports and waits out a full timeout on
// each unwired one — in virtual time, which the wire runtime pays for in wall
// time. Clamp both to the fabric actually in front of us.
void TuneDiscovery(const Topology& topo, DiscoveryConfig* disc) {
  uint8_t max_ports = 1;
  for (uint32_t i = 0; i < topo.switch_count(); ++i) {
    max_ports = std::max(max_ports, topo.switch_at(i).num_ports);
  }
  disc->max_ports = max_ports;
  disc->probe_timeout = Ms(50);
}

// One echo round-trip with retry-on-timeout (a ping can race discovery's last
// directory install or a repair in flight; the protocol is lossy by design).
bool PingWithRetry(WireFabric& fabric, uint32_t src, uint32_t dst,
                   uint64_t flow, int attempts, TimeNs timeout,
                   int64_t* rtt_ns = nullptr) {
  for (int i = 0; i < attempts; ++i) {
    const PingOutcome out = fabric.Ping(src, dst, flow, timeout);
    if (out.ok) {
      if (rtt_ns != nullptr) {
        *rtt_ns = out.rtt_ns;
      }
      return true;
    }
    if (!out.error.empty()) {
      DN_WARN << "ping " << src << "->" << dst << ": " << out.error;
    }
  }
  return false;
}

// The inter-switch link between the uplink switches of `src` and `dst`, which
// (being the unique shortest route in any topology where it exists) carries
// their traffic. kInvalidLink when the two hosts share a switch or are not
// directly connected.
LinkIndex DirectInterSwitchLink(const Topology& topo, uint32_t src,
                                uint32_t dst) {
  auto up_src = topo.HostUplink(src);
  auto up_dst = topo.HostUplink(dst);
  if (!up_src.ok() || !up_dst.ok() ||
      up_src.value().node.index == up_dst.value().node.index) {
    return kInvalidLink;
  }
  for (LinkIndex li = 0; li < topo.link_count(); ++li) {
    const Link& link = topo.link_at(li);
    if (!link.a.node.is_switch() || !link.b.node.is_switch()) {
      continue;
    }
    const uint32_t a = link.a.node.index;
    const uint32_t b = link.b.node.index;
    if ((a == up_src.value().node.index && b == up_dst.value().node.index) ||
        (b == up_src.value().node.index && a == up_dst.value().node.index)) {
      return li;
    }
  }
  return kInvalidLink;
}

// Kills `victim` live, then pings src->dst until host failover restores
// delivery. Returns the wall-clock gap in ns, or -1 if it never recovered.
int64_t FailoverDrill(WireFabric& fabric, uint32_t src, uint32_t dst,
                      LinkIndex victim, uint64_t flow) {
  // The bring-up port-up alarms opened each switch's alarm-suppression window
  // (1 s): a kill inside it has its port-down alarm deferred to the window's
  // end, which would bill ~900 ms of suppression to "failover". Let the
  // windows expire first so the drill measures steady-state repair.
  SleepNs(Ms(1100));
  const int64_t killed_at = MonotonicNowNs();
  fabric.KillLink(victim);
  const int64_t deadline = killed_at + Sec(15);
  while (MonotonicNowNs() < deadline) {
    const PingOutcome out = fabric.Ping(src, dst, flow, Ms(50));
    if (out.ok) {
      return MonotonicNowNs() - killed_at;
    }
    SleepNs(Ms(2));
  }
  return -1;
}

int Run(const Options& opts) {
  Topology topo;
  if (opts.topo == "testbed") {
    topo = MakeTriangleTestbed();
  } else {
    auto loaded = LoadTopology(opts.topo);
    if (!loaded.ok()) {
      std::fprintf(stderr, "dumbnet-net: %s\n",
                   loaded.error().ToString().c_str());
      return 2;
    }
    topo = std::move(loaded.value());
  }
  if (topo.host_count() < 2 || topo.switch_count() < 1) {
    std::fprintf(stderr, "dumbnet-net: need at least 2 hosts and 1 switch\n");
    return 2;
  }

  telemetry::SetEnabled(true);
  if (std::getenv("DUMBNET_WIRE_DEBUG") != nullptr) SetLogLevel(LogLevel::kDebug);

  WireFabricOptions fopts;
  fopts.node.transport = opts.transport;
  fopts.node.uds_dir = opts.uds_dir;
  fopts.node.tcp_base_port = opts.tcp_base_port;
  TuneDiscovery(topo, &fopts.node.disc_config);

  WireFabric fabric(topo, fopts);

  std::printf("dumbnet-net: booting %zu switches + %zu hosts over %s\n",
              topo.switch_count(), topo.host_count(),
              opts.transport == TransportKind::kUds ? "uds" : "tcp");
  const int64_t t0 = MonotonicNowNs();
  Status status = fabric.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "dumbnet-net: wiring failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("dumbnet-net: fabric wired in %.1f ms\n",
              static_cast<double>(MonotonicNowNs() - t0) / 1e6);

  const int64_t t1 = MonotonicNowNs();
  status = fabric.RunDiscovery();
  if (!status.ok()) {
    std::fprintf(stderr, "dumbnet-net: discovery failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("dumbnet-net: discovery + adoption complete in %.1f ms\n",
              static_cast<double>(MonotonicNowNs() - t1) / 1e6);

  // --- Ping sweep -------------------------------------------------------------
  const uint32_t n = static_cast<uint32_t>(fabric.host_count());
  uint64_t flow = 1;
  int sweep_ok = 0;
  int sweep_total = 0;
  int64_t rtt_sum = 0;
  for (uint32_t src = 0; src < n; ++src) {
    for (int r = 0; r < opts.pings; ++r) {
      const uint32_t dst = (src + 1 + static_cast<uint32_t>(r)) % n;
      if (dst == src) {
        continue;
      }
      ++sweep_total;
      int64_t rtt = 0;
      if (PingWithRetry(fabric, src, dst, flow++, 3, Sec(2), &rtt)) {
        ++sweep_ok;
        rtt_sum += rtt;
      } else {
        std::fprintf(stderr, "dumbnet-net: ping %u->%u failed\n", src, dst);
      }
    }
  }
  std::printf("dumbnet-net: ping sweep %d/%d ok (mean rtt %.1f us)\n", sweep_ok,
              sweep_total,
              sweep_ok > 0 ? static_cast<double>(rtt_sum) / sweep_ok / 1e3 : 0.0);

  // Provenance: every data packet carried the switch-UID path its sender was
  // promised; receivers verified hop by hop.
  uint64_t divergence = 0;
  uint64_t received = 0;
  for (uint32_t h = 0; h < n; ++h) {
    const HostAgentStats stats = fabric.HostStats(h);
    divergence += stats.path_divergence;
    received += stats.data_received;
  }
  std::printf("dumbnet-net: %" PRIu64 " data packets received, %" PRIu64
              " path divergences\n",
              received, divergence);

  bool failed = sweep_ok != sweep_total || divergence != 0 || received == 0;

  // --- Live failover ----------------------------------------------------------
  if (!opts.skip_failover && !failed) {
    uint32_t src = 0;
    uint32_t dst = 0;
    LinkIndex victim = kInvalidLink;
    for (uint32_t d = 1; d < n && victim == kInvalidLink; ++d) {
      victim = DirectInterSwitchLink(fabric.topo(), 0, d);
      dst = d;
    }
    if (victim == kInvalidLink) {
      std::printf(
          "dumbnet-net: no direct inter-switch link to kill; skipping "
          "failover drill\n");
    } else {
      // Warm the route so the victim link is actually carrying this flow.
      const uint64_t drill_flow = flow++;
      if (!PingWithRetry(fabric, src, dst, drill_flow, 3, Sec(2))) {
        std::fprintf(stderr, "dumbnet-net: failover warmup ping failed\n");
        failed = true;
      } else {
        const Link& link = fabric.topo().link_at(victim);
        std::printf("dumbnet-net: killing live link S%u<->S%u...\n",
                    link.a.node.index, link.b.node.index);
        const int64_t gap = FailoverDrill(fabric, src, dst, victim, drill_flow);
        uint64_t repairs = 0;
        for (uint32_t h = 0; h < n; ++h) {
          repairs += fabric.HostStats(h).link_repairs;
        }
        if (gap < 0) {
          std::fprintf(stderr,
                       "dumbnet-net: FAIL: no recovery after link kill\n");
          failed = true;
        } else if (repairs == 0) {
          std::fprintf(
              stderr,
              "dumbnet-net: FAIL: recovered but no host ran a repair\n");
          failed = true;
        } else {
          DN_HISTOGRAM_RECORD("wire.failover_ns", static_cast<double>(gap));
          std::printf("dumbnet-net: failover recovered in %.2f ms (%" PRIu64
                      " host repairs)\n",
                      static_cast<double>(gap) / 1e6, repairs);
        }
      }
    }
  }

  if (!opts.metrics_path.empty()) {
    if (!telemetry::MetricsRegistry::Global().WriteJsonFile(opts.metrics_path)) {
      std::fprintf(stderr, "dumbnet-net: cannot write %s\n",
                   opts.metrics_path.c_str());
      return 2;
    }
    std::printf("dumbnet-net: wrote telemetry metrics to %s\n",
                opts.metrics_path.c_str());
  }

  fabric.Shutdown();
  std::printf("dumbnet-net: %s\n", failed ? "FAIL" : "all checks passed");
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace dumbnet

int main(int argc, char** argv) {
  dumbnet::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--topo" && i + 1 < argc) {
      opts.topo = argv[++i];
    } else if (arg == "--transport" && i + 1 < argc) {
      const std::string kind = argv[++i];
      if (kind == "uds") {
        opts.transport = dumbnet::wire::TransportKind::kUds;
      } else if (kind == "tcp") {
        opts.transport = dumbnet::wire::TransportKind::kTcp;
      } else {
        return dumbnet::Usage();
      }
    } else if (arg == "--uds-dir" && i + 1 < argc) {
      opts.uds_dir = argv[++i];
    } else if (arg == "--tcp-base-port" && i + 1 < argc) {
      opts.tcp_base_port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--pings" && i + 1 < argc) {
      opts.pings = std::atoi(argv[++i]);
      if (opts.pings < 1) {
        return dumbnet::Usage();
      }
    } else if (arg == "--skip-failover") {
      opts.skip_failover = true;
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      opts.metrics_path = argv[++i];
    } else {
      return dumbnet::Usage();
    }
  }
  return dumbnet::Run(opts);
}
