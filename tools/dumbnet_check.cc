// dumbnet-check: static fabric-state checker. Loads a serialized topology (and
// optionally the path-graph files hosts would cache) and reports invariant
// violations without running the simulator:
//
//   dumbnet-check fabric.topo [pathgraphs.pg ...] [--max-tag-depth N]
//
// Exit status: 0 clean, 1 findings reported, 2 usage/load error.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/fabric_check.h"

namespace {

int Usage() {
  std::cerr << "usage: dumbnet-check <topology-file> [pathgraph-file ...]\n"
               "                     [--max-tag-depth N]\n"
               "\n"
               "Checks a serialized fabric state for: structural validity,\n"
               "unreachable hosts, port conflicts and dangling links, loops in\n"
               "primary paths, backups sharing a failed link with their primary,\n"
               "and tag stacks exceeding the one-byte header budget.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topo_path;
  std::vector<std::string> pathgraph_paths;
  dumbnet::FabricCheckOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-tag-depth") {
      if (i + 1 >= argc) {
        return Usage();
      }
      const long depth = std::strtol(argv[++i], nullptr, 10);
      if (depth < 2) {
        std::cerr << "dumbnet-check: --max-tag-depth must be >= 2\n";
        return 2;
      }
      opts.max_tag_depth = static_cast<size_t>(depth);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dumbnet-check: unknown option '" << arg << "'\n";
      return Usage();
    } else if (topo_path.empty()) {
      topo_path = arg;
    } else {
      pathgraph_paths.push_back(arg);
    }
  }
  if (topo_path.empty()) {
    return Usage();
  }
  return dumbnet::RunDumbnetCheck(topo_path, pathgraph_paths, opts, std::cout);
}
