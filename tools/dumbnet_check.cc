// dumbnet-check: static fabric-state checker and benchmark regression gate.
//
// Fabric mode — loads a serialized topology (and optionally the path-graph files
// hosts would cache) and reports invariant violations without running the
// simulator:
//
//   dumbnet-check fabric.topo [pathgraphs.pg ...] [--max-tag-depth N]
//                 [--verify-pathgraph] [--json findings.json]
//                 [--pathgraph-s N] [--pathgraph-epsilon N]
//                 [--max-backup-overlap F]
//
// --verify-pathgraph adds the semantic verifier (Section 4.3 / Algorithm 1):
// loop-free backups, real-edge paths, detour completeness and epsilon-goodness
// per window, subgraph reachability to the destination, and the backup
// link-disjointness score. --json writes all findings machine-readably.
//
// Bench mode — compares a benchmark JSON report (bench/* --json output) against
// a committed baseline and flags metrics that regressed beyond the tolerance:
//
//   dumbnet-check --bench-json run.json --bench-baseline bench/BENCH_baseline.json
//                 [--bench-tolerance 0.20]
//
// The two modes compose: pass both a topology and --bench-json to gate on both.
// Exit status: 0 clean, 1 findings reported, 2 usage/load error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/bench_compare.h"
#include "src/analysis/fabric_check.h"

namespace {

int Usage() {
  std::cerr << "usage: dumbnet-check <topology-file> [pathgraph-file ...]\n"
               "                     [--max-tag-depth N] [--verify-pathgraph]\n"
               "                     [--json <findings.json>]\n"
               "                     [--pathgraph-s N] [--pathgraph-epsilon N]\n"
               "                     [--max-backup-overlap <frac>]\n"
               "       dumbnet-check --bench-json <report.json>\n"
               "                     --bench-baseline <baseline.json>\n"
               "                     [--bench-tolerance <frac>]\n"
               "\n"
               "Fabric mode checks a serialized state for: structural validity,\n"
               "unreachable hosts, port conflicts and dangling links, loops in\n"
               "primary paths, backups sharing a failed link with their primary,\n"
               "and tag stacks exceeding the one-byte header budget.\n"
               "Bench mode flags metrics worse than the baseline by more than the\n"
               "tolerance (default 0.20); time-like units regress by growing,\n"
               "rates and ratios by shrinking.\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Returns findings, or nullopt-equivalent via `ok=false` on load errors.
int RunBenchGate(const std::string& report_path, const std::string& baseline_path,
                 double tolerance) {
  std::string report_text;
  std::string baseline_text;
  if (!ReadFile(report_path, &report_text)) {
    std::cerr << "dumbnet-check: cannot read " << report_path << "\n";
    return 2;
  }
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::cerr << "dumbnet-check: cannot read " << baseline_path << "\n";
    return 2;
  }
  auto report = dumbnet::ParseBenchJson(report_text);
  if (!report.ok()) {
    std::cerr << "dumbnet-check: " << report_path << ": " << report.error().message()
              << "\n";
    return 2;
  }
  auto baseline = dumbnet::ParseBenchJson(baseline_text);
  if (!baseline.ok()) {
    std::cerr << "dumbnet-check: " << baseline_path << ": "
              << baseline.error().message() << "\n";
    return 2;
  }
  auto findings =
      dumbnet::CompareBenchRows(baseline.value(), report.value(), tolerance);
  for (const auto& f : findings) {
    std::cout << f.check << ": " << f.detail << "\n";
  }
  if (findings.empty()) {
    std::cout << "bench gate: " << baseline.value().size() << " baseline metrics ok ("
              << report.value().size() << " reported)\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topo_path;
  std::vector<std::string> pathgraph_paths;
  std::string bench_json;
  std::string bench_baseline;
  double bench_tolerance = 0.20;
  dumbnet::FabricCheckOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-tag-depth") {
      if (i + 1 >= argc) {
        return Usage();
      }
      const long depth = std::strtol(argv[++i], nullptr, 10);
      if (depth < 2) {
        std::cerr << "dumbnet-check: --max-tag-depth must be >= 2\n";
        return 2;
      }
      opts.max_tag_depth = static_cast<size_t>(depth);
    } else if (arg == "--verify-pathgraph") {
      opts.verify_semantics = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        return Usage();
      }
      opts.json_path = argv[++i];
    } else if (arg == "--pathgraph-s" || arg == "--pathgraph-epsilon") {
      if (i + 1 >= argc) {
        return Usage();
      }
      const long value = std::strtol(argv[++i], nullptr, 10);
      if (value < 0) {
        std::cerr << "dumbnet-check: " << arg << " must be >= 0\n";
        return 2;
      }
      (arg == "--pathgraph-s" ? opts.verify.s : opts.verify.epsilon) =
          static_cast<uint32_t>(value);
    } else if (arg == "--max-backup-overlap") {
      if (i + 1 >= argc) {
        return Usage();
      }
      char* end = nullptr;
      opts.verify.max_backup_overlap = std::strtod(argv[++i], &end);
      if (end == argv[i] || opts.verify.max_backup_overlap < 0.0) {
        std::cerr << "dumbnet-check: --max-backup-overlap must be a fraction >= 0\n";
        return 2;
      }
    } else if (arg == "--bench-json") {
      if (i + 1 >= argc) {
        return Usage();
      }
      bench_json = argv[++i];
    } else if (arg == "--bench-baseline") {
      if (i + 1 >= argc) {
        return Usage();
      }
      bench_baseline = argv[++i];
    } else if (arg == "--bench-tolerance") {
      if (i + 1 >= argc) {
        return Usage();
      }
      char* end = nullptr;
      bench_tolerance = std::strtod(argv[++i], &end);
      if (end == argv[i] || bench_tolerance < 0.0) {
        std::cerr << "dumbnet-check: --bench-tolerance must be a fraction >= 0\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dumbnet-check: unknown option '" << arg << "'\n";
      return Usage();
    } else if (topo_path.empty()) {
      topo_path = arg;
    } else {
      pathgraph_paths.push_back(arg);
    }
  }

  if (!bench_json.empty() || !bench_baseline.empty()) {
    if (bench_json.empty() || bench_baseline.empty()) {
      std::cerr << "dumbnet-check: --bench-json and --bench-baseline go together\n";
      return Usage();
    }
    int bench_rc = RunBenchGate(bench_json, bench_baseline, bench_tolerance);
    if (bench_rc != 0 || topo_path.empty()) {
      return bench_rc;
    }
    // Fall through to the fabric check; both were requested and bench is clean.
  }
  if (topo_path.empty()) {
    return Usage();
  }
  return dumbnet::RunDumbnetCheck(topo_path, pathgraph_paths, opts, std::cout);
}
