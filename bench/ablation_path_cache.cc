// Ablation (Sections 4.3, 7.3): what does the path-graph cache actually buy?
//
// The paper's claim: caching a path *graph* (k equal-cost paths + local detours +
// a backup path) lets hosts fail over locally and "help[s] avoid overloading the
// controller during a link failure". We ablate the cache configuration and measure
// (i) the data-plane recovery time of a flow whose uplink dies and (ii) how many
// path queries hit the controller afterwards.
//
// Configurations sweep the cache from the paper's full path graph down to a plain
// single-route cache (no detour subgraph, no backup): the poorer the cache, the
// more the host must lean on the controller after a failure.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"
#include "src/transport/reliable_flow.h"

using namespace dumbnet;

namespace {

struct Outcome {
  double recovery_ms = -1;
  uint64_t path_requests = 0;  // issued by the measured host after the cut
  bool finished = false;
};

Outcome RunConfig(uint32_t k_paths, bool cache_backup, uint32_t epsilon,
                  bool send_detours, bool send_backup) {
  LeafSpineConfig ls_config;
  ls_config.num_spine = 2;
  ls_config.num_leaf = 5;
  ls_config.hosts_per_leaf = 5;
  ls_config.switch_ports = 64;
  ls_config.uplink_gbps = 0.5;
  ls_config.host_gbps = 0.5;
  auto ls = MakeLeafSpine(ls_config);
  std::vector<uint32_t> leaves = ls.value().leaves;

  HostAgentConfig agent_config;
  agent_config.k_paths = k_paths;
  agent_config.cache_backup = cache_backup;
  ControllerConfig controller_config;
  controller_config.path_graph.epsilon = epsilon;
  controller_config.send_detours = send_detours;
  controller_config.send_backup = send_backup;

  SimulatedFabric fabric(std::move(ls.value().topo), agent_config);
  fabric.AddController(24, controller_config);
  fabric.controller().AdoptTopology(fabric.topo());
  fabric.Run();

  DumbNetChannel src_channel(&fabric.agent(0));
  DumbNetChannel dst_channel(&fabric.agent(6));
  ReliableFlowReceiver receiver(&dst_channel, 1);
  FlowConfig flow;
  flow.total_bytes = 0;
  flow.rto = Ms(25);
  ReliableFlowSender sender(&src_channel, 1, fabric.agent(6).mac(), flow);
  sender.Start();
  fabric.RunUntil(fabric.Now() + Ms(200));

  // Cut the uplink the flow is bound to.
  const PathTableEntry* entry = fabric.agent(0).path_table().Find(fabric.agent(6).mac());
  PortNum uplink = 1;
  if (entry != nullptr && !entry->paths.empty()) {
    auto it = entry->flow_binding.find(1);
    uplink = it != entry->flow_binding.end() && it->second < entry->paths.size()
                 ? entry->paths[it->second].tags.front()
                 : entry->paths.front().tags.front();
  }
  uint64_t requests_before = fabric.agent(0).stats().path_requests;
  uint64_t bytes_at_cut = sender.progress().bytes_acked;
  TimeNs cut_at = fabric.Now();
  fabric.topo().SetLinkUp(fabric.topo().LinkAtPort(leaves[0], uplink), false);

  // Recovery = first time bytes flow again after the cut (sampled at 1 ms).
  Outcome outcome;
  std::function<void()> probe = [&] {
    if (outcome.finished) {
      return;
    }
    if (sender.progress().bytes_acked > bytes_at_cut + 200000) {
      outcome.recovery_ms = ToMs(fabric.Now() - cut_at);
      outcome.finished = true;
      return;
    }
    fabric.sim().ScheduleAfter(Ms(1), probe);
  };
  fabric.sim().ScheduleAfter(Ms(1), probe);
  fabric.RunUntil(fabric.Now() + Sec(3));
  sender.Stop();
  fabric.RunUntil(fabric.Now() + Sec(1));

  outcome.path_requests = fabric.agent(0).stats().path_requests - requests_before;
  return outcome;
}

}  // namespace

int main() {
  bench::Banner("Ablation — path-graph caching vs failover resilience",
                "Section 4.3/7.3: richer caches recover locally and spare the "
                "controller");
  struct Row {
    const char* name;
    uint32_t k;
    bool backup;
    uint32_t epsilon;
    bool detours;
    bool send_backup;
  };
  const Row rows[] = {
      {"full path graph (k=4+backup)", 4, true, 2, true, true},
      {"no backup (k=4 + detours)", 4, false, 2, true, false},
      {"thin graph (epsilon=0)", 4, true, 0, true, true},
      {"backup only (no detours)", 4, true, 2, false, true},
      {"primary only (plain route cache)", 1, false, 2, false, false},
  };
  std::printf("%-34s %14s %20s\n", "cache configuration", "recovery (ms)",
              "controller queries");
  for (const Row& row : rows) {
    Outcome outcome = RunConfig(row.k, row.backup, row.epsilon, row.detours,
                                row.send_backup);
    std::printf("%-34s %14.0f %20lu\n", row.name, outcome.recovery_ms,
                static_cast<unsigned long>(outcome.path_requests));
  }
  std::printf("\nexpectation: every config with >= 2 cached routes recovers in tens of\n"
              "ms without controller involvement; the single-path cache must go back\n"
              "to the controller, adding a query (and RTTs) to the recovery path.\n");
  return 0;
}
