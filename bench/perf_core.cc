// perf_core: microbenchmarks for the two engines everything else sits on — the
// event core (timer wheel + pooled callbacks) and the routing compute path
// (CSR graph + scratch SSSP + tree-shared batch path graphs).
//
// To keep the speedup numbers honest and machine-portable, the *pre-change*
// implementations are embedded here verbatim (the priority-queue simulator core
// and the allocating per-destination path-graph pipeline) and both generations
// run back-to-back in the same process. The reported `speedup` metrics are
// ratios, so a committed baseline stays meaningful across machines;
// tools/dumbnet-check gates on them.
//
//   events_per_sec        cancel-heavy drain, new core vs legacy priority queue
//   path_graphs_per_sec   one-source/many-destination batch vs legacy loop
//   bring_up_wall         full discovery + bootstrap wall-clock, 1k/4k/16k hosts
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <functional>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/contracts.h"
#include "src/core/fabric.h"
#include "src/routing/path_graph.h"
#include "src/routing/shortest_path.h"
#include "src/topo/generators.h"
#include "src/util/thread_pool.h"

using namespace dumbnet;

namespace {

// Execution-environment params attached to every metric whose value depends on
// sharding, so tools/dumbnet-check only gates like-for-like runs (a 4-shard
// multicore number must never be compared against a single-shard baseline).
// Core count is printed, not recorded: params are row-identity keys, and a
// machine-dependent key would turn every baseline row into a false
// "bench-missing" on a runner with a different core count. The committed
// baseline only keeps rows whose thread count is machine-stable (shards=1).
bench::JsonReporter::Params ShardParams(uint32_t shards, uint32_t threads,
                                        bench::JsonReporter::Params extra = {}) {
  extra.push_back({"shards", std::to_string(shards)});
  extra.push_back({"threads", std::to_string(threads)});
  return extra;
}

// Runs one bench section with the runtime contract checker on and returns the
// hot-scope allocations it observed (the no-alloc annotations in PathTable /
// HostAgent / Network are live during `fn`). CI gates on every section
// reporting zero. Enabled per-section so one-time static registrations (first
// telemetry counter use, pool spin-up) outside a section are never charged.
uint64_t HotAllocsDuring(const std::function<void()>& fn) {
  const uint64_t before = dumbnet::contracts::Counters().hot_allocs;
  dumbnet::contracts::SetEnabled(true);
  fn();
  dumbnet::contracts::SetEnabled(false);
  return dumbnet::contracts::Counters().hot_allocs - before;
}

double WallSeconds(const std::function<void()>& fn) {
  // dn-lint: allow(wall-clock, benches measure real elapsed time by design)
  auto start = std::chrono::steady_clock::now();
  fn();
  // dn-lint: allow(wall-clock, benches measure real elapsed time by design)
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// ---------------------------------------------------------------------------
// Legacy event core: the std::priority_queue-of-std::function simulator this
// repo shipped before the timer wheel, trimmed to what the workload exercises.
// Cancellation went through a flat id list probed linearly on every pop.
// ---------------------------------------------------------------------------
namespace legacy {

class Simulator {
 public:
  uint64_t ScheduleAt(TimeNs at, std::function<void()> fn) {
    if (at < now_) {
      at = now_;
    }
    uint64_t id = next_id_++;
    queue_.push(Event{at, next_seq_++, id, std::move(fn)});
    return id;
  }
  uint64_t ScheduleAfter(TimeNs delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }
  void Cancel(uint64_t id) { cancelled_.push_back(id); }
  TimeNs Now() const { return now_; }

  uint64_t Run() {
    uint64_t ran = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (IsCancelled(ev.id)) {
        continue;
      }
      now_ = ev.at;
      ev.fn();
      ++ran;
    }
    return ran;
  }

 private:
  struct Event {
    TimeNs at;
    uint64_t seq;
    uint64_t id;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  bool IsCancelled(uint64_t id) {
    auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end()) {
      return false;
    }
    *it = cancelled_.back();
    cancelled_.pop_back();
    return true;
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<uint64_t> cancelled_;
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
};

// The pre-change routing stack, embedded verbatim: a vector-of-vectors
// adjacency rebuilt per call, a full graph copy for the backup penalisation,
// deque-based allocating BFS, and an allocating Dijkstra — i.e. the seed
// repo's SwitchGraph/BfsDistances/ShortestPath/BuildPathGraph pipeline.
class SwitchGraph {
 public:
  explicit SwitchGraph(const Topology& topo) {
    adj_.resize(topo.switch_count());
    for (LinkIndex li = 0; li < topo.link_count(); ++li) {
      const Link& l = topo.link_at(li);
      if (!l.up || !l.a.node.is_switch() || !l.b.node.is_switch()) {
        continue;
      }
      adj_[l.a.node.index].push_back(AdjEdge{l.b.node.index, l.a.port, l.b.port, li, 1.0});
      adj_[l.b.node.index].push_back(AdjEdge{l.a.node.index, l.b.port, l.a.port, li, 1.0});
    }
  }

  size_t size() const { return adj_.size(); }
  const std::vector<AdjEdge>& Neighbors(uint32_t s) const { return adj_[s]; }

  void ScaleLinkWeight(LinkIndex link, double factor) {
    for (auto& edges : adj_) {
      for (AdjEdge& e : edges) {
        if (e.link == link) {
          e.weight *= factor;
        }
      }
    }
  }

 private:
  std::vector<std::vector<AdjEdge>> adj_;
};

std::vector<uint32_t> BfsDistances(const SwitchGraph& graph, uint32_t src) {
  std::vector<uint32_t> dist(graph.size(), UINT32_MAX);
  std::deque<uint32_t> q;
  dist[src] = 0;
  q.push_back(src);
  while (!q.empty()) {
    uint32_t u = q.front();
    q.pop_front();
    for (const AdjEdge& e : graph.Neighbors(u)) {
      if (dist[e.to] == UINT32_MAX) {
        dist[e.to] = dist[u] + 1;
        q.push_back(e.to);
      }
    }
  }
  return dist;
}

struct DijkstraItem {
  double cost;
  uint64_t tiebreak;
  uint32_t vertex;
  bool operator>(const DijkstraItem& other) const {
    if (cost != other.cost) {
      return cost > other.cost;
    }
    return tiebreak > other.tiebreak;
  }
};

Result<SwitchPath> ShortestPath(const SwitchGraph& graph, uint32_t src, uint32_t dst,
                                Rng* rng) {
  std::vector<double> cost(graph.size(), kInfCost);
  std::vector<uint32_t> parent(graph.size(), kNoVertex);
  std::priority_queue<DijkstraItem, std::vector<DijkstraItem>, std::greater<DijkstraItem>>
      pq;
  cost[src] = 0.0;
  pq.push({0.0, 0, src});
  while (!pq.empty()) {
    double c = pq.top().cost;
    uint32_t u = pq.top().vertex;
    pq.pop();
    if (c > cost[u]) {
      continue;
    }
    if (u == dst) {
      break;
    }
    for (const AdjEdge& e : graph.Neighbors(u)) {
      double nc = c + e.weight;
      bool better = nc < cost[e.to];
      bool tie = !better && nc == cost[e.to] && rng != nullptr && rng->Bernoulli(0.5);
      if (better || tie) {
        cost[e.to] = nc;
        parent[e.to] = u;
        pq.push({nc, rng != nullptr ? rng->Next64() : 0, e.to});
      }
    }
  }
  if (cost[dst] == kInfCost) {
    return Error(ErrorCode::kUnavailable, "destination unreachable");
  }
  SwitchPath path;
  for (uint32_t v = dst; v != kNoVertex; v = parent[v]) {
    path.push_back(v);
    if (v == src) {
      break;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<PathGraph> BuildPathGraph(const Topology& topo, uint32_t src_switch,
                                 uint32_t dst_switch, const PathGraphParams& params,
                                 Rng* rng) {
  SwitchGraph graph(topo);  // rebuilt per call, as the old controller did
  PathGraph out;
  out.src_switch = src_switch;
  out.dst_switch = dst_switch;

  auto primary = ShortestPath(graph, src_switch, dst_switch, rng);
  if (!primary.ok()) {
    return primary.error();
  }
  out.primary = std::move(primary.value());

  {
    SwitchGraph penalized = graph;
    for (size_t i = 0; i + 1 < out.primary.size(); ++i) {
      for (const AdjEdge& e : graph.Neighbors(out.primary[i])) {
        if (e.to == out.primary[i + 1]) {
          penalized.ScaleLinkWeight(e.link, params.backup_penalty);
        }
      }
    }
    auto backup = ShortestPath(penalized, src_switch, dst_switch, rng);
    if (backup.ok()) {
      out.backup = std::move(backup.value());
    }
  }

  std::set<uint32_t> vertex_set(out.primary.begin(), out.primary.end());
  vertex_set.insert(out.backup.begin(), out.backup.end());
  const size_t l = out.primary.size();
  const uint32_t s = std::max<uint32_t>(1, params.s);
  const uint32_t step = std::max<uint32_t>(1, s / 2);
  for (size_t i = 0; i < l; i += step) {
    uint32_t a = out.primary[i];
    uint32_t b = out.primary[std::min(i + s, l - 1)];
    std::vector<uint32_t> da = BfsDistances(graph, a);
    std::vector<uint32_t> db = BfsDistances(graph, b);
    uint32_t budget = s + params.epsilon;
    for (uint32_t x = 0; x < graph.size(); ++x) {
      if (da[x] != UINT32_MAX && db[x] != UINT32_MAX && da[x] + db[x] <= budget) {
        vertex_set.insert(x);
      }
    }
    if (i + s >= l - 1) {
      break;
    }
  }
  out.vertices.assign(vertex_set.begin(), vertex_set.end());
  std::set<LinkIndex> link_set;
  for (uint32_t v : out.vertices) {
    for (const AdjEdge& e : graph.Neighbors(v)) {
      if (vertex_set.count(e.to) > 0) {
        link_set.insert(e.link);
      }
    }
  }
  out.links.assign(link_set.begin(), link_set.end());
  return out;
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Workload 1: cancel-heavy event drain. The retransmit-timer pattern that
// dominates transport runs: schedule a far-out timeout, beat it with an ack,
// cancel, repeat — with a window of timers outstanding at all times.
// ---------------------------------------------------------------------------
struct CancelDrainResult {
  double events_per_sec_new = 0;
  double events_per_sec_legacy = 0;
  uint64_t pool_slots = 0;  // new core's final slot-pool size (memory bound)
};

CancelDrainResult RunCancelDrain(uint64_t total_events) {
  CancelDrainResult r;
  const uint64_t window = 512;  // outstanding timeouts at any moment

  double new_secs = WallSeconds([&] {
    dumbnet::Simulator sim;
    std::vector<EventHandle> timers(window);
    uint64_t fired = 0;
    std::function<void(uint64_t)> tick = [&](uint64_t i) {
      if (i >= total_events) {
        return;
      }
      // Cancel the oldest outstanding timeout (its "ack" arrived)...
      sim.Cancel(timers[i % window]);
      // ...arm a replacement far in the future...
      timers[i % window] =
          sim.ScheduleAfter(Ms(50) + static_cast<TimeNs>(i % 97), [&fired] { ++fired; });
      // ...and keep the clock moving.
      sim.ScheduleAfter(Us(1), [&tick, i] { tick(i + 1); });
    };
    sim.ScheduleAt(0, [&tick] { tick(0); });
    sim.Run();
    r.pool_slots = sim.mem_stats().pool_slots;
  });
  r.events_per_sec_new = static_cast<double>(2 * total_events) / new_secs;

  double legacy_secs = WallSeconds([&] {
    legacy::Simulator sim;
    std::vector<uint64_t> timers(window, 0);
    uint64_t fired = 0;
    std::function<void(uint64_t)> tick = [&](uint64_t i) {
      if (i >= total_events) {
        return;
      }
      sim.Cancel(timers[i % window]);
      timers[i % window] =
          sim.ScheduleAfter(Ms(50) + static_cast<TimeNs>(i % 97), [&fired] { ++fired; });
      sim.ScheduleAfter(Us(1), [&tick, i] { tick(i + 1); });
    };
    sim.ScheduleAt(0, [&tick] { tick(0); });
    sim.Run();
  });
  r.events_per_sec_legacy = static_cast<double>(2 * total_events) / legacy_secs;
  return r;
}

// ---------------------------------------------------------------------------
// Workload 2: path graphs from one source to every other edge switch — what the
// controller does when precomputing routes for a host's flow fan-out.
// ---------------------------------------------------------------------------
struct BatchResult {
  double per_sec_legacy = 0;
  double per_sec_new = 0;     // single-threaded: tree + scratch, no pool
  double per_sec_pooled = 0;  // with the thread pool
  size_t graphs = 0;
};

BatchResult RunPathGraphBatch(const Topology& topo, uint32_t src,
                              const std::vector<uint32_t>& dsts, int repeats) {
  BatchResult r;
  r.graphs = dsts.size() * static_cast<size_t>(repeats);
  PathGraphParams params;

  size_t built_legacy = 0;
  double legacy_secs = WallSeconds([&] {
    Rng rng(42);
    for (int it = 0; it < repeats; ++it) {
      for (uint32_t dst : dsts) {
        auto pg = legacy::BuildPathGraph(topo, src, dst, params, &rng);
        if (pg.ok()) {
          ++built_legacy;
        }
      }
    }
  });
  r.per_sec_legacy = static_cast<double>(r.graphs) / legacy_secs;

  SwitchGraph graph(topo);
  size_t built_new = 0;
  double new_secs = WallSeconds([&] {
    Rng rng(42);
    SsspScratch tree_scratch;
    for (int it = 0; it < repeats; ++it) {
      SsspTree tree = BuildSsspTree(graph, src, &rng, &tree_scratch);
      auto graphs = BuildPathGraphBatch(topo, graph, tree, dsts, params, &rng, nullptr);
      for (const auto& pg : graphs) {
        if (pg.ok()) {
          ++built_new;
        }
      }
    }
  });
  r.per_sec_new = static_cast<double>(r.graphs) / new_secs;

  ThreadPool pool;
  double pooled_secs = WallSeconds([&] {
    Rng rng(42);
    SsspScratch tree_scratch;
    for (int it = 0; it < repeats; ++it) {
      SsspTree tree = BuildSsspTree(graph, src, &rng, &tree_scratch);
      auto graphs = BuildPathGraphBatch(topo, graph, tree, dsts, params, &rng, &pool);
      (void)graphs;
    }
  });
  r.per_sec_pooled = static_cast<double>(r.graphs) / pooled_secs;

  if (built_legacy != built_new) {
    std::printf("WARNING: legacy built %zu graphs, new built %zu\n", built_legacy,
                built_new);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Workload 3: full bring-up (probing discovery + bootstraps) wall-clock on
// leaf-spine fabrics of 1k/4k/16k hosts and 3-tier fat-trees of 65,536 and
// 128,000 hosts (k = 64, 80 — the closest fat-tree sizes to the 65,536- and
// 131,072-host targets; the leaf-spine shape tops out at 254 spine ports).
// ---------------------------------------------------------------------------
struct BringUpResult {
  double secs = 0;
  size_t hosts = 0;
  uint32_t shards = 1;
  uint32_t threads = 1;
};

BringUpResult MeasureBringUp(SimulatedFabric& fabric, const DiscoveryConfig& discovery) {
  BringUpResult r;
  r.hosts = fabric.host_count();
  r.shards = fabric.shard_count();
  r.threads = fabric.shard_set().thread_count();
  r.secs = WallSeconds([&] {
    if (!fabric.BringUp(0, ControllerConfig(), discovery)) {
      std::printf("WARNING: bring-up did not complete\n");
    }
  });
  // Guard against silently truncated discovery making the point look fast.
  const size_t found = fabric.controller().db().mirror().switch_count();
  const size_t expect = fabric.topo().switch_count();
  if (found != expect) {
    std::printf("WARNING: discovery found %zu of %zu switches; timing is invalid\n",
                found, expect);
  }
  return r;
}

BringUpResult RunBringUp(uint32_t leaves, uint32_t hosts_per_leaf) {
  LeafSpineConfig config;
  config.num_spine = 4;
  config.num_leaf = leaves;
  config.hosts_per_leaf = hosts_per_leaf;
  config.switch_ports = static_cast<uint8_t>(std::min<uint32_t>(hosts_per_leaf + 8, 254));
  auto ls = MakeLeafSpine(config);
  SimulatedFabric fabric(std::move(ls.value().topo));
  DiscoveryConfig discovery;
  discovery.max_ports = config.switch_ports;
  return MeasureBringUp(fabric, discovery);
}

BringUpResult RunBringUpFatTree(uint32_t k) {
  FatTreeConfig config;
  config.k = k;
  auto ft = MakeFatTree(config);
  if (!ft.ok()) {
    std::printf("WARNING: fat-tree k=%u generation failed\n", k);
    return {};
  }
  SimulatedFabric fabric(std::move(ft.value().topo));
  DiscoveryConfig discovery;
  discovery.max_ports = static_cast<PortNum>(k + 1);
  return MeasureBringUp(fabric, discovery);
}

// ---------------------------------------------------------------------------
// Workload 4: sharded fabric throughput. A 3-tier fat-tree (k=8: 80 switches,
// 128 hosts) with 2 us inter-switch cables is partitioned into N shards; every
// host ping-pongs with a partner half the fabric away (nearly all traffic
// crosses pods, hence shards). Reported events/s covers the whole run —
// windows, barriers and channel drains included — so the single-shard number is
// the honest baseline for the sharded one. On a multicore host the N-shard run
// uses one worker thread per shard; on a single core it runs the sequential
// reference mode, and the recorded threads/cores params keep CI gating
// like-for-like.
// ---------------------------------------------------------------------------
struct ShardWorkloadResult {
  double events_per_sec = 0;
  uint64_t events = 0;
  uint64_t windows = 0;
  uint64_t cross_posts = 0;
  uint32_t shards = 1;
  uint32_t threads = 1;
};

ShardWorkloadResult RunShardWorkload(uint32_t shards, int pings_per_host) {
  FatTreeConfig config;
  config.k = 8;
  auto ft = MakeFatTree(config);
  Topology topo = std::move(ft.value().topo);
  // Inter-switch cables at datacenter scale (2 us ~ 400 m of fiber): the shard
  // plan's lookahead is the minimum cross-shard propagation, so this sets the
  // conservative window width. Host drops stay at the default.
  for (LinkIndex li = 0; li < topo.link_count(); ++li) {
    const Link& l = topo.link_at(li);
    if (l.a.node.is_switch() && l.b.node.is_switch()) {
      topo.SetLinkPropagation(li, Us(2));
    }
  }
  SimulatedFabric fabric(std::move(topo), HostAgentConfig(), DumbSwitchConfig(),
                         NetworkConfig(), shards);
  fabric.BringUpAdopted(0);

  const uint32_t n = static_cast<uint32_t>(fabric.host_count());
  for (uint32_t h = 0; h < n; ++h) {
    fabric.agent(h).SetDataHandler(
        [&fabric, h](const Packet& pkt, const DataPayload& data) {
          if (!data.is_ack) {
            DataPayload echo = data;
            echo.is_ack = true;
            (void)fabric.agent(h).Send(pkt.eth.src_mac, data.flow_id, echo);
          }
        });
  }

  // Per-host self-rescheduling ping chain. Every event runs on its own host's
  // shard (the chain reschedules on the host's simulator), so the driver itself
  // never violates shard ownership.
  std::vector<std::function<void(int)>> ticks(n);
  for (uint32_t h = 0; h < n; ++h) {
    const uint32_t partner = (h + n / 2) % n;
    Simulator& hsim = fabric.net().SimFor(NodeId::Host(h));
    ticks[h] = [&fabric, &ticks, &hsim, h, partner, pings_per_host](int i) {
      if (i >= pings_per_host) {
        return;
      }
      DataPayload ping;
      ping.flow_id = (static_cast<uint64_t>(h) << 20) | static_cast<uint64_t>(i);
      ping.bytes = 64;
      (void)fabric.agent(h).Send(fabric.agent(partner).mac(), ping.flow_id, ping);
      hsim.ScheduleAfter(Us(25), [&ticks, h, i] { ticks[h](i + 1); });
    };
    hsim.ScheduleAfter(Us(1) + h % 97, [&ticks, h] { ticks[h](0); });
  }

  ShardWorkloadResult r;
  r.shards = fabric.shard_count();
  r.threads = fabric.shard_set().thread_count();
  const uint64_t before = fabric.executed_events();
  const double secs = WallSeconds([&] { fabric.Run(); });
  r.events = fabric.executed_events() - before;
  r.events_per_sec = static_cast<double>(r.events) / secs;
  r.windows = fabric.shard_set().stats().windows;
  r.cross_posts = fabric.shard_set().stats().cross_posts;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::Banner("perf_core — event core + routing compute microbenchmarks",
                "n/a (engineering benchmark, not a paper figure)");
  bench::JsonReporter report;

  // --- 1. cancel-heavy event drain -----------------------------------------
  const uint64_t total_events = args.quick ? 150000 : 600000;
  CancelDrainResult drain;
  const uint64_t drain_allocs =
      HotAllocsDuring([&] { drain = RunCancelDrain(total_events); });
  double drain_speedup = drain.events_per_sec_new / drain.events_per_sec_legacy;
  std::printf("\ncancel-heavy drain (%lu ticks, window 512):\n",
              static_cast<unsigned long>(total_events));
  std::printf("  new core     %12.0f events/s (slot pool: %lu slots)\n",
              drain.events_per_sec_new, static_cast<unsigned long>(drain.pool_slots));
  std::printf("  legacy core  %12.0f events/s\n", drain.events_per_sec_legacy);
  std::printf("  speedup      %12.2fx\n", drain_speedup);
  bench::JsonReporter::Params drain_params = {
      {"events", std::to_string(total_events)}, {"window", "512"}};
  report.Add("perf_core", "events_per_sec", drain.events_per_sec_new, "events/s",
             drain_params);
  report.Add("perf_core", "events_per_sec_legacy", drain.events_per_sec_legacy,
             "events/s", drain_params);
  report.Add("perf_core", "event_drain_speedup", drain_speedup, "ratio", drain_params);
  report.Add("perf_core", "event_pool_slots", static_cast<double>(drain.pool_slots),
             "slots", drain_params);
  report.Add("perf_core", "hot_scope_allocs", static_cast<double>(drain_allocs),
             "allocs", {{"section", "cancel_drain"}});

  // --- 2. one-source/many-destination path graphs --------------------------
  CubeConfig cube_config;
  cube_config.dims = {8, 8, 8};
  cube_config.hosts_per_switch = 0;
  cube_config.switch_ports = 8;
  auto cube = MakeCube(cube_config);
  const Topology& topo = cube.value().topo;
  std::vector<uint32_t> dsts;
  for (uint32_t v = 1; v < topo.switch_count(); v += 2) {
    dsts.push_back(v);
  }
  const int repeats = args.quick ? 2 : 6;
  BatchResult batch;
  const uint64_t batch_allocs = HotAllocsDuring(
      [&] { batch = RunPathGraphBatch(topo, cube.value().At(0, 0, 0), dsts, repeats); });
  double batch_speedup = batch.per_sec_new / batch.per_sec_legacy;
  double pooled_speedup = batch.per_sec_pooled / batch.per_sec_legacy;
  std::printf("\npath-graph batch (8-cube, %zu dsts x %d repeats):\n", dsts.size(),
              repeats);
  std::printf("  legacy loop  %12.0f graphs/s\n", batch.per_sec_legacy);
  std::printf("  new batch    %12.0f graphs/s (%.2fx)\n", batch.per_sec_new,
              batch_speedup);
  std::printf("  pooled batch %12.0f graphs/s (%.2fx)\n", batch.per_sec_pooled,
              pooled_speedup);
  bench::JsonReporter::Params batch_params = {
      {"topology", "cube8"}, {"dsts", std::to_string(dsts.size())}};
  report.Add("perf_core", "path_graphs_per_sec", batch.per_sec_new, "graphs/s",
             batch_params);
  report.Add("perf_core", "path_graphs_per_sec_legacy", batch.per_sec_legacy,
             "graphs/s", batch_params);
  report.Add("perf_core", "path_graphs_per_sec_pooled", batch.per_sec_pooled,
             "graphs/s", batch_params);
  report.Add("perf_core", "path_graph_batch_speedup", batch_speedup, "ratio",
             batch_params);
  report.Add("perf_core", "path_graph_pooled_speedup", pooled_speedup, "ratio",
             batch_params);
  report.Add("perf_core", "hot_scope_allocs", static_cast<double>(batch_allocs),
             "allocs", {{"section", "path_graph_batch"}});

  // --- 3. bring-up wall-clock, 1k .. 128k hosts ----------------------------
  struct Scale {
    uint32_t leaves;
    uint32_t hosts_per_leaf;
  };
  std::vector<Scale> scales = {{32, 32}};  // ~1k hosts
  if (!args.quick) {
    scales.push_back({64, 64});    // ~4k hosts
    scales.push_back({128, 128});  // ~16k hosts
  }
  std::printf("\nbring-up wall-clock (probing discovery + bootstraps, leaf-spine):\n");
  auto report_bring_up = [&report](const BringUpResult& b) {
    std::printf("  %6zu hosts  %8.2f s wall (%u shard(s), %u thread(s))\n", b.hosts,
                b.secs, b.shards, b.threads);
    report.Add("perf_core", "bring_up_wall", b.secs, "s",
               ShardParams(b.shards, b.threads, {{"hosts", std::to_string(b.hosts)}}));
  };
  uint64_t bring_up_allocs = 0;
  for (const Scale& sc : scales) {
    BringUpResult b;
    bring_up_allocs +=
        HotAllocsDuring([&] { b = RunBringUp(sc.leaves, sc.hosts_per_leaf); });
    report_bring_up(b);
  }
  report.Add("perf_core", "hot_scope_allocs", static_cast<double>(bring_up_allocs),
             "allocs", {{"section", "bring_up_leaf_spine"}});
  if (!args.quick) {
    // 3-tier fat-tree scale points: k=64 -> 65,536 hosts / 5,120 switches,
    // k=80 -> 128,000 hosts / 8,000 switches (the 100K+ point).
    std::printf("bring-up wall-clock (probing discovery + bootstraps, fat-tree):\n");
    for (uint32_t k : {64u, 80u}) {
      report_bring_up(RunBringUpFatTree(k));
    }
  }

  // --- 4. sharded fabric throughput ----------------------------------------
  const int pings = args.quick ? 400 : 2000;
  ShardWorkloadResult single;
  ShardWorkloadResult sharded;
  const uint64_t ping_allocs = HotAllocsDuring([&] {
    single = RunShardWorkload(1, pings);
    sharded = RunShardWorkload(4, pings);
  });
  std::printf("\nsharded fabric ping-pong (fat-tree k=8, cross-pod partners, "
              "%u core(s)):\n",
              std::thread::hardware_concurrency());
  std::printf("  1 shard      %12.0f events/s (%lu events)\n", single.events_per_sec,
              static_cast<unsigned long>(single.events));
  std::printf("  %u shards     %12.0f events/s (%lu events, %lu windows, "
              "%lu cross-shard, %u threads)\n",
              sharded.shards, sharded.events_per_sec,
              static_cast<unsigned long>(sharded.events),
              static_cast<unsigned long>(sharded.windows),
              static_cast<unsigned long>(sharded.cross_posts), sharded.threads);
  std::printf("  speedup      %12.2fx\n",
              sharded.events_per_sec / single.events_per_sec);
  report.Add("perf_core", "shard_events_per_sec", single.events_per_sec, "events/s",
             ShardParams(single.shards, single.threads,
                         {{"topology", "fattree8"}}));
  report.Add("perf_core", "shard_events_per_sec", sharded.events_per_sec, "events/s",
             ShardParams(sharded.shards, sharded.threads, {{"topology", "fattree8"}}));
  report.Add("perf_core", "shard_speedup",
             sharded.events_per_sec / single.events_per_sec, "ratio",
             ShardParams(sharded.shards, sharded.threads, {{"topology", "fattree8"}}));
  report.Add("perf_core", "hot_scope_allocs", static_cast<double>(ping_allocs),
             "allocs", {{"section", "shard_ping_pong"}});

  if (args.quick) {
    std::printf("\n(quick mode: reduced event count, repeats, and host sweep)\n");
  }
  std::printf("\nhot-scope allocations (contract checker%s): drain=%lu batch=%lu "
              "bring_up=%lu pings=%lu\n",
              dumbnet::contracts::kCompiledIn ? "" : " COMPILED OUT",
              static_cast<unsigned long>(drain_allocs),
              static_cast<unsigned long>(batch_allocs),
              static_cast<unsigned long>(bring_up_allocs),
              static_cast<unsigned long>(ping_allocs));
  dumbnet::contracts::PublishTelemetry();
  if (!report.WriteTo(args.json_path)) {
    return 1;
  }
  bench::WriteMetricsJson(args.metrics_path);
  return 0;
}
