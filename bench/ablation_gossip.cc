// Ablation (Section 4.2): how much of stage-1 dissemination does each mechanism
// carry? The switch broadcast is hop-limited ("a max of 5 hops is often enough"),
// so on larger fabrics the host-to-host gossip flood must cover the rest. We
// shrink the broadcast to 1 hop on a fat-tree and sweep the ring-gossip fanout,
// measuring notification coverage and delay.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"
#include "src/util/stats.h"

using namespace dumbnet;

namespace {

struct Outcome {
  size_t notified = 0;
  size_t hosts = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t via_fabric = 0;
  size_t via_gossip = 0;
};

Outcome Run(uint32_t fanout, uint8_t notify_hops) {
  FatTreeConfig config;
  config.k = 4;
  auto ft = MakeFatTree(config);
  uint32_t agg = ft.value().aggregation[3];

  HostAgentConfig agent_config;
  agent_config.gossip_fanout = fanout;
  agent_config.process_delay = Us(50);
  DumbSwitchConfig switch_config;
  switch_config.notify_hops = notify_hops;
  SimulatedFabric fabric(std::move(ft.value().topo), agent_config, switch_config);
  fabric.BringUpAdopted(0);

  Outcome outcome;
  outcome.hosts = fabric.host_count();
  LogHistogram delays;  // same log-bucketed collector the telemetry registry uses
  std::vector<bool> heard(fabric.host_count(), false);
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    fabric.agent(h).SetLinkEventHook([&, h](const LinkEventPayload& ev, bool fabric_src) {
      if (ev.up || heard[h]) {
        return;
      }
      heard[h] = true;
      ++outcome.notified;
      (fabric_src ? outcome.via_fabric : outcome.via_gossip) += 1;
      delays.Add(ToMs(fabric.agent(h).sim().Now() - ev.origin_time));
    });
  }

  // Cut an aggregation-core link deep in the fabric (hosts are >= 2 hops away, so
  // a 1-hop broadcast cannot reach any of them directly... except via the agg's
  // edge neighbors' hosts).
  fabric.topo().SetLinkUp(fabric.topo().LinkAtPort(agg, 3), false);
  fabric.RunUntil(fabric.Now() + Sec(2));

  outcome.p50_ms = delays.Percentile(50);
  outcome.p99_ms = delays.Percentile(99);
  return outcome;
}

}  // namespace

int main() {
  bench::Banner("Ablation — stage-1 dissemination: broadcast hops vs gossip fanout",
                "Section 4.2: the two mechanisms are complementary");

  std::printf("broadcast limited to 1 hop (gossip must carry the fabric):\n");
  std::printf("%8s %12s %12s %12s %12s %12s\n", "fanout", "coverage", "p50 (ms)",
              "p99 (ms)", "via fabric", "via gossip");
  for (uint32_t fanout : {0u, 1u, 2u, 3u, 4u}) {
    Outcome o = Run(fanout, 1);
    std::printf("%8u %10zu/%zu %12.2f %12.2f %12zu %12zu\n", fanout, o.notified, o.hosts,
                o.p50_ms, o.p99_ms, o.via_fabric, o.via_gossip);
  }
  std::printf("\npaper default (5-hop broadcast):\n");
  for (uint32_t fanout : {0u, 3u}) {
    Outcome o = Run(fanout, 5);
    std::printf("%8u %10zu/%zu %12.2f %12.2f %12zu %12zu\n", fanout, o.notified, o.hosts,
                o.p50_ms, o.p99_ms, o.via_fabric, o.via_gossip);
  }
  std::printf("\nexpectation: with a crippled broadcast, coverage needs fanout >= 1 and\n"
              "improves with more peers; with the paper's 5-hop broadcast the fabric\n"
              "alone reaches every host on this diameter-4 fat-tree.\n");
  return 0;
}
