// Figure 11(a): CDF of topology-change notification delays after a link failure.
//
// Paper result: most hosts receive the stage-1 link-failure message within ~4 ms
// and the stage-2 topology patch within ~8 ms; the whole process finishes within
// 10 ms.
//
// Method: the real two-stage pipeline runs on the testbed topology — switch alarm
// broadcast (5-hop limit), host-to-host flooding over cached paths, controller
// patch flood — with host control-plane processing calibrated to the paper's
// software stack (hundreds of microseconds per message).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"
#include "src/util/stats.h"

using namespace dumbnet;

int main() {
  bench::Banner("Figure 11(a) — failure notification delay CDF",
                "link-failure msg <= ~4 ms, topology patch <= ~8 ms, all < 10 ms");

  auto tb = MakePaperTestbed();
  std::vector<uint32_t> spines = tb.value().spines;
  HostAgentConfig agent_config;
  agent_config.process_delay = Us(300);  // control-plane software stack per message
  ControllerConfig controller_config;
  controller_config.patch_aggregation = Ms(2);
  SimulatedFabric fabric(std::move(tb.value().topo), agent_config);
  fabric.AddController(25, controller_config);
  fabric.controller().AdoptTopology(fabric.topo());
  fabric.Run();

  // Log-bucketed collectors (same class the telemetry histograms use, so the
  // percentiles here match a telemetry report of the same stream).
  LogHistogram event_delay;
  LogHistogram patch_delay;
  std::vector<bool> heard(fabric.host_count(), false);
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    fabric.agent(h).SetLinkEventHook(
        [&event_delay, &fabric, &heard, h](const LinkEventPayload& ev, bool) {
          // One sample per host: the first notification is what unblocks failover
          // (the same failure is alarmed by both endpoint switches).
          if (!ev.up && !heard[h]) {
            heard[h] = true;
            event_delay.Add(ToMs(fabric.Now() - ev.origin_time));
          }
        });
    fabric.agent(h).SetPatchHook([&patch_delay, &fabric](const TopologyPatchPayload& p) {
      patch_delay.Add(ToMs(fabric.Now() - p.origin_time));
    });
  }

  // Cut a spine0 <-> leaf1 link. Origin time is the switch alarm (the paper also
  // measures from failure discovery, excluding physical detection).
  fabric.topo().SetLinkUp(fabric.topo().LinkAtPort(spines[0], 2), false);
  fabric.Run();

  auto print = [](const char* name, const LogHistogram& s) {
    std::printf("%-22s n=%3llu  p50=%5.2f ms  p90=%5.2f ms  p99=%5.2f ms  max=%5.2f ms\n",
                name, static_cast<unsigned long long>(s.count()), s.Percentile(50),
                s.Percentile(90), s.Percentile(99), s.max());
  };
  print("link failure msg", event_delay);
  print("topology patch msg", patch_delay);

  std::printf("\ncdf (fraction of hosts notified by t):\n");
  std::printf("%8s %18s %18s\n", "t (ms)", "failure msg", "topology patch");
  size_t hosts = fabric.host_count();
  for (double t : {0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
    std::printf("%8.1f %17.0f%% %17.0f%%\n", t,
                100.0 * static_cast<double>(event_delay.count()) *
                    event_delay.FractionBelow(t) / static_cast<double>(hosts),
                100.0 * static_cast<double>(patch_delay.count()) *
                    patch_delay.FractionBelow(t) / static_cast<double>(hosts));
  }
  std::printf("\nentire process finished by %.2f ms (paper: < 10 ms)\n",
              std::max(event_delay.max(), patch_delay.max()));
  return 0;
}
