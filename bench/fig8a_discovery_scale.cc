// Figure 8(a): topology discovery time vs. network size, for fat-tree and cube
// topologies with the controller in different positions.
//
// Paper result: discovery of a 500-switch network of 64-port switches completes
// within ~70 s; time grows roughly linearly with switch count (the controller's
// PM processing rate is the bottleneck), and topology shape / controller placement
// matter little.
//
// Method: the real DiscoveryService probes a simulated fabric through real dumb
// switches; every switch is probed on all 64 possible ports (as in the paper's
// emulation), and the controller CPU is a single server with a per-PM cost.
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"

using namespace dumbnet;

namespace {

struct Point {
  const char* series;
  size_t switches;
  double seconds;
  uint64_t pms;
};

// Builds the fabric, runs discovery from `controller_host`, returns elapsed
// simulated seconds. Switches advertise 64 ports; probing covers all of them.
Point RunDiscovery(const char* series, Topology topo, uint32_t controller_host,
                   uint8_t max_ports) {
  SimulatedFabric fabric(std::move(topo));
  DiscoveryConfig config;
  config.max_ports = max_ports;
  DiscoveryService discovery(&fabric.agent(controller_host), config);
  discovery.Start(nullptr);
  fabric.Run();
  Point p;
  p.series = series;
  p.switches = fabric.switch_count();
  p.seconds = ToSec(discovery.stats().finished_at - discovery.stats().started_at);
  p.pms = discovery.stats().probes_sent;
  if (discovery.db().switch_count() != fabric.switch_count()) {
    std::printf("WARNING: %s with %zu switches discovered only %zu!\n", series,
                fabric.switch_count(), discovery.db().switch_count());
  }
  return p;
}

// Sharded bring-up: same discovery workload, but measured in wall-clock with
// the fabric partitioned across simulation shards. Virtual discovery time is
// shard-invariant (the control plane converges to the same state); what the
// shards change is how long the simulation itself takes, so this row reports
// real seconds and records shards/threads/cores honestly for like-for-like
// comparison across machines.
struct ShardPoint {
  uint32_t shards;
  uint32_t threads;
  size_t switches;
  double wall_secs;
  double sim_secs;
};

double WallSeconds(const std::function<void()>& fn) {
  // dn-lint: allow(wall-clock, benches measure real elapsed time by design)
  auto start = std::chrono::steady_clock::now();
  fn();
  // dn-lint: allow(wall-clock, benches measure real elapsed time by design)
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

ShardPoint RunShardedDiscovery(uint32_t k, uint32_t shards, uint8_t max_ports) {
  FatTreeConfig config;
  config.k = k;
  config.attach_hosts = false;
  auto ft = MakeFatTree(config);
  uint32_t host = ft.value().topo.AddHost();
  (void)ft.value().topo.AttachHost(host, ft.value().edge[0], static_cast<PortNum>(1));
  SimulatedFabric fabric(std::move(ft.value().topo), HostAgentConfig(),
                         DumbSwitchConfig(), NetworkConfig(), shards);
  DiscoveryConfig dconfig;
  dconfig.max_ports = max_ports;
  DiscoveryService discovery(&fabric.agent(host), dconfig);
  ShardPoint p;
  p.shards = fabric.shard_count();
  p.threads = fabric.shard_set().thread_count();
  p.switches = fabric.switch_count();
  p.wall_secs = WallSeconds([&] {
    discovery.Start(nullptr);
    fabric.Run();
  });
  p.sim_secs = ToSec(discovery.stats().finished_at - discovery.stats().started_at);
  if (discovery.db().switch_count() != fabric.switch_count()) {
    std::printf("WARNING: sharded fat-tree k=%u discovered only %zu of %zu!\n", k,
                discovery.db().switch_count(), fabric.switch_count());
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::Banner("Figure 8(a) — discovery time vs network size (64-port switches)",
                "~linear in #switches; <= 70 s at 500 switches; topology and "
                "controller position secondary");
  const bool quick = args.quick;
  const uint8_t ports = quick ? 16 : 64;
  std::vector<Point> points;

  // Fat-tree series (controller on a leaf host, as in the paper).
  for (uint32_t k : std::vector<uint32_t>{4, 8, 12, 16, 20}) {
    if (quick && k > 8) {
      break;
    }
    FatTreeConfig config;
    config.k = k;
    config.attach_hosts = false;
    auto ft = MakeFatTree(config);
    // One host on edge switch 0 acts as the controller.
    uint32_t host = ft.value().topo.AddHost();
    (void)ft.value().topo.AttachHost(host, ft.value().edge[0], static_cast<PortNum>(1));
    points.push_back(RunDiscovery("fat-tree", std::move(ft.value().topo), host, ports));
  }

  // Cube series: controller at a corner and at the center.
  for (uint32_t n : std::vector<uint32_t>{2, 3, 4, 6, 8}) {
    if (quick && n > 4) {
      break;
    }
    for (bool center : {false, true}) {
      CubeConfig config;
      config.dims = {n, n, n};
      config.hosts_per_switch = 0;
      config.switch_ports = ports;
      auto cube = MakeCube(config);
      uint32_t attach = center ? cube.value().At(n / 2, n / 2, n / 2) : cube.value().At(0, 0, 0);
      uint32_t host = cube.value().topo.AddHost();
      (void)cube.value().topo.AttachHost(host, attach, static_cast<PortNum>(7));
      points.push_back(RunDiscovery(center ? "cube-center" : "cube-corner",
                                    std::move(cube.value().topo), host, ports));
    }
  }

  std::printf("%-12s %10s %14s %14s %16s\n", "series", "#switches", "time (s)",
              "probe msgs", "us per probe");
  for (const Point& p : points) {
    std::printf("%-12s %10zu %14.2f %14lu %16.1f\n", p.series, p.switches, p.seconds,
                static_cast<unsigned long>(p.pms), 1e6 * p.seconds / static_cast<double>(p.pms));
  }
  std::printf("\nshape check: time/switch should be roughly constant per series "
              "(linear growth, as in the paper).\n");
  if (quick) {
    std::printf("(DUMBNET_QUICK=1: reduced sweep, 16-port probing)\n");
  }
  // Sharded bring-up wall-clock: the same probing discovery on a fat-tree,
  // single-shard vs 4-shard. Simulated discovery time must not move; wall time
  // is what sharding buys on multicore hosts.
  const uint32_t shard_k = quick ? 8 : 16;
  std::vector<ShardPoint> shard_points;
  for (uint32_t shards : {1u, 4u}) {
    shard_points.push_back(RunShardedDiscovery(shard_k, shards, ports));
  }
  std::printf("\nsharded bring-up (fat-tree k=%u, wall-clock, %u core(s)):\n",
              shard_k, std::thread::hardware_concurrency());
  for (const ShardPoint& p : shard_points) {
    std::printf("  %u shard(s) / %u thread(s): %8.2f s wall, %8.2f s simulated, "
                "%zu switches\n",
                p.shards, p.threads, p.wall_secs, p.sim_secs, p.switches);
  }

  bench::JsonReporter report;
  for (const Point& p : points) {
    bench::JsonReporter::Params params = {{"series", p.series},
                                          {"switches", std::to_string(p.switches)}};
    report.Add("fig8a", "discovery_time", p.seconds, "s", params);
    report.Add("fig8a", "probe_messages", static_cast<double>(p.pms), "msgs", params);
  }
  for (const ShardPoint& p : shard_points) {
    // No cores param: params are baseline row-identity keys and must be
    // machine-stable; the core count is printed above instead.
    bench::JsonReporter::Params params = {
        {"series", "fattree-sharded"},
        {"switches", std::to_string(p.switches)},
        {"shards", std::to_string(p.shards)},
        {"threads", std::to_string(p.threads)}};
    report.Add("fig8a", "bring_up_wall", p.wall_secs, "s", params);
    report.Add("fig8a", "discovery_time", p.sim_secs, "s", params);
  }
  if (!report.WriteTo(args.json_path)) {
    return 1;
  }
  return 0;
}
