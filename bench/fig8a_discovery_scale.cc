// Figure 8(a): topology discovery time vs. network size, for fat-tree and cube
// topologies with the controller in different positions.
//
// Paper result: discovery of a 500-switch network of 64-port switches completes
// within ~70 s; time grows roughly linearly with switch count (the controller's
// PM processing rate is the bottleneck), and topology shape / controller placement
// matter little.
//
// Method: the real DiscoveryService probes a simulated fabric through real dumb
// switches; every switch is probed on all 64 possible ports (as in the paper's
// emulation), and the controller CPU is a single server with a per-PM cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"

using namespace dumbnet;

namespace {

struct Point {
  const char* series;
  size_t switches;
  double seconds;
  uint64_t pms;
};

// Builds the fabric, runs discovery from `controller_host`, returns elapsed
// simulated seconds. Switches advertise 64 ports; probing covers all of them.
Point RunDiscovery(const char* series, Topology topo, uint32_t controller_host,
                   uint8_t max_ports) {
  SimulatedFabric fabric(std::move(topo));
  DiscoveryConfig config;
  config.max_ports = max_ports;
  DiscoveryService discovery(&fabric.agent(controller_host), config);
  discovery.Start(nullptr);
  fabric.sim().Run();
  Point p;
  p.series = series;
  p.switches = fabric.switch_count();
  p.seconds = ToSec(discovery.stats().finished_at - discovery.stats().started_at);
  p.pms = discovery.stats().probes_sent;
  if (discovery.db().switch_count() != fabric.switch_count()) {
    std::printf("WARNING: %s with %zu switches discovered only %zu!\n", series,
                fabric.switch_count(), discovery.db().switch_count());
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::Banner("Figure 8(a) — discovery time vs network size (64-port switches)",
                "~linear in #switches; <= 70 s at 500 switches; topology and "
                "controller position secondary");
  const bool quick = args.quick;
  const uint8_t ports = quick ? 16 : 64;
  std::vector<Point> points;

  // Fat-tree series (controller on a leaf host, as in the paper).
  for (uint32_t k : std::vector<uint32_t>{4, 8, 12, 16, 20}) {
    if (quick && k > 8) {
      break;
    }
    FatTreeConfig config;
    config.k = k;
    config.attach_hosts = false;
    auto ft = MakeFatTree(config);
    // One host on edge switch 0 acts as the controller.
    uint32_t host = ft.value().topo.AddHost();
    (void)ft.value().topo.AttachHost(host, ft.value().edge[0], static_cast<PortNum>(1));
    points.push_back(RunDiscovery("fat-tree", std::move(ft.value().topo), host, ports));
  }

  // Cube series: controller at a corner and at the center.
  for (uint32_t n : std::vector<uint32_t>{2, 3, 4, 6, 8}) {
    if (quick && n > 4) {
      break;
    }
    for (bool center : {false, true}) {
      CubeConfig config;
      config.dims = {n, n, n};
      config.hosts_per_switch = 0;
      config.switch_ports = ports;
      auto cube = MakeCube(config);
      uint32_t attach = center ? cube.value().At(n / 2, n / 2, n / 2) : cube.value().At(0, 0, 0);
      uint32_t host = cube.value().topo.AddHost();
      (void)cube.value().topo.AttachHost(host, attach, static_cast<PortNum>(7));
      points.push_back(RunDiscovery(center ? "cube-center" : "cube-corner",
                                    std::move(cube.value().topo), host, ports));
    }
  }

  std::printf("%-12s %10s %14s %14s %16s\n", "series", "#switches", "time (s)",
              "probe msgs", "us per probe");
  for (const Point& p : points) {
    std::printf("%-12s %10zu %14.2f %14lu %16.1f\n", p.series, p.switches, p.seconds,
                static_cast<unsigned long>(p.pms), 1e6 * p.seconds / static_cast<double>(p.pms));
  }
  std::printf("\nshape check: time/switch should be roughly constant per series "
              "(linear growth, as in the paper).\n");
  if (quick) {
    std::printf("(DUMBNET_QUICK=1: reduced sweep, 16-port probing)\n");
  }
  bench::JsonReporter report;
  for (const Point& p : points) {
    bench::JsonReporter::Params params = {{"series", p.series},
                                          {"switches", std::to_string(p.switches)}};
    report.Add("fig8a", "discovery_time", p.seconds, "s", params);
    report.Add("fig8a", "probe_messages", static_cast<double>(p.pms), "msgs", params);
  }
  if (!report.WriteTo(args.json_path)) {
    return 1;
  }
  return 0;
}
