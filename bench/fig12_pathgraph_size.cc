// Figure 12: path-graph size vs. the ε parameter, 10x10x10 cube, s = 2.
//
// Paper result: for long primary paths a larger ε caches a lot more (detours at
// every hop compound); short paths stay cheap even at large ε. The figure's y-axis
// counts paths in the path graph (up to ~150 at len=15, ε=4); the text discusses
// the number of switches cached. We report both.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/routing/path_graph.h"
#include "src/topo/generators.h"

using namespace dumbnet;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::JsonReporter report;
  bench::Banner("Figure 12 — path graph size vs epsilon (10-cube, s=2)",
                "longer primaries blow up with epsilon; short paths stay small");

  CubeConfig config;
  config.dims = {10, 10, 10};
  config.hosts_per_switch = 0;
  config.switch_ports = 8;
  auto cube = MakeCube(config);
  const Topology& topo = cube.value().topo;
  SwitchGraph graph(topo);

  // Primary lengths as in the paper: 2, 5, 10, 15 hops along the grid diagonal-ish.
  struct Pair {
    int len;
    uint32_t src;
    uint32_t dst;
  };
  auto& c = cube.value();
  const Pair pairs[] = {
      {2, c.At(0, 0, 0), c.At(2, 0, 0)},
      {5, c.At(0, 0, 0), c.At(3, 2, 0)},
      {10, c.At(0, 0, 0), c.At(4, 3, 3)},
      {15, c.At(0, 0, 0), c.At(7, 4, 4)},
  };

  std::printf("%6s %6s %14s %16s\n", "len", "eps", "#switches", "#paths (cap 5k)");
  for (const Pair& pair : pairs) {
    for (uint32_t eps = 0; eps <= 4; ++eps) {
      PathGraphParams params;
      params.s = 2;
      params.epsilon = eps;
      auto pg = BuildPathGraph(topo, graph, pair.src, pair.dst, params);
      if (!pg.ok()) {
        std::printf("%6d %6u   (unreachable)\n", pair.len, eps);
        continue;
      }
      uint64_t paths = CountPathsInSubgraph(topo, pg.value(), 5000);
      std::printf("%6d %6u %14zu %16lu\n", pair.len, eps, pg.value().vertices.size(),
                  static_cast<unsigned long>(paths));
      bench::JsonReporter::Params jp = {{"len", std::to_string(pair.len)},
                                        {"epsilon", std::to_string(eps)}};
      report.Add("fig12", "graph_switches",
                 static_cast<double>(pg.value().vertices.size()), "switches", jp);
      report.Add("fig12", "graph_paths", static_cast<double>(paths), "paths", jp);
    }
    std::printf("\n");
  }
  std::printf("shape check: #paths grows steeply with eps for len >= 10, stays modest\n"
              "for len <= 5 — the tradeoff Section 4.3 describes.\n");
  if (!report.WriteTo(args.json_path)) {
    return 1;
  }
  return 0;
}
