// Extension bench (paper Section 3.1: "We can easily support existing
// source-routing based optimizations such as pHost on to DumbNet too").
//
// Incast: N senders stream 1 MiB each into one 1 Gbps access link with shallow
// (32 KB) switch queues. The window-based go-back-N transport repeatedly overruns
// the bottleneck queue; the receiver-driven pHost transport paces tokens at the
// downlink rate, so arrivals never exceed capacity regardless of fan-in.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"
#include "src/transport/phost.h"

using namespace dumbnet;

namespace {

constexpr uint64_t kBytes = 1 << 20;
constexpr uint64_t kFlowBase = 1ULL << 32;

struct Outcome {
  uint64_t drops = 0;
  double finish_ms = 0;
};

std::unique_ptr<SimulatedFabric> MakeFabric() {
  LeafSpineConfig config;
  config.num_spine = 2;
  config.num_leaf = 3;
  config.hosts_per_leaf = 12;
  config.switch_ports = 32;
  config.uplink_gbps = 10.0;
  config.host_gbps = 1.0;
  auto ls = MakeLeafSpine(config);
  NetworkConfig net_config;
  net_config.queue_capacity_bytes = 32 * 1024;
  auto fabric = std::make_unique<SimulatedFabric>(std::move(ls.value().topo),
                                                  HostAgentConfig(), DumbSwitchConfig(),
                                                  net_config);
  fabric->BringUpAdopted(0);
  return fabric;
}

Outcome RunPHost(int senders) {
  auto fabric = MakeFabric();
  uint32_t sink = 3;
  DumbNetChannel sink_channel(&fabric->agent(sink));
  PHostConfig config;
  config.downlink_gbps = 1.0;
  PHostReceiver receiver(&sink_channel, kFlowBase, config);
  std::vector<std::unique_ptr<DumbNetChannel>> channels;
  std::vector<std::unique_ptr<PHostSender>> flows;
  int done = 0;
  for (int i = 0; i < senders; ++i) {
    uint32_t src = 12 + static_cast<uint32_t>(i);  // leaves 1/2
    channels.push_back(std::make_unique<DumbNetChannel>(&fabric->agent(src)));
    flows.push_back(std::make_unique<PHostSender>(channels.back().get(),
                                                  kFlowBase + 1 + static_cast<uint64_t>(i),
                                                  fabric->agent(sink).mac(), kBytes, config));
  }
  TimeNs start = fabric->Now();
  for (auto& flow : flows) {
    flow->Start([&done] { ++done; });
  }
  fabric->Run();
  Outcome outcome;
  outcome.drops = fabric->net().stats().dropped_queue_full;
  outcome.finish_ms = done == senders ? ToMs(fabric->Now() - start) : -1;
  return outcome;
}

Outcome RunWindowed(int senders) {
  auto fabric = MakeFabric();
  uint32_t sink = 3;
  DumbNetChannel sink_channel(&fabric->agent(sink));
  std::vector<std::unique_ptr<DumbNetChannel>> channels;
  std::vector<std::unique_ptr<ReliableFlowReceiver>> receivers;
  std::vector<std::unique_ptr<ReliableFlowSender>> flows;
  int done = 0;
  for (int i = 0; i < senders; ++i) {
    uint32_t src = 12 + static_cast<uint32_t>(i);
    channels.push_back(std::make_unique<DumbNetChannel>(&fabric->agent(src)));
    receivers.push_back(std::make_unique<ReliableFlowReceiver>(
        &sink_channel, 100 + static_cast<uint64_t>(i)));
    FlowConfig flow;
    flow.total_bytes = kBytes;
    flows.push_back(std::make_unique<ReliableFlowSender>(
        channels.back().get(), 100 + static_cast<uint64_t>(i), fabric->agent(sink).mac(),
        flow));
  }
  TimeNs start = fabric->Now();
  for (auto& flow : flows) {
    flow->Start([&done] { ++done; });
  }
  fabric->Run();
  Outcome outcome;
  outcome.drops = fabric->net().stats().dropped_queue_full;
  outcome.finish_ms = done == senders ? ToMs(fabric->Now() - start) : -1;
  return outcome;
}

}  // namespace

int main() {
  bench::Banner("Extension — pHost-style receiver-driven transport under incast",
                "receiver-driven token pacing keeps the incast queue shallow; "
                "window senders overrun it");
  std::printf("%8s | %14s %14s | %14s %14s\n", "senders", "pHost drops", "pHost FCT(ms)",
              "window drops", "window FCT(ms)");
  for (int senders : {2, 4, 8, 16}) {
    Outcome phost = RunPHost(senders);
    Outcome window = RunWindowed(senders);
    std::printf("%8d | %14lu %14.1f | %14lu %14.1f\n", senders,
                static_cast<unsigned long>(phost.drops), phost.finish_ms,
                static_cast<unsigned long>(window.drops), window.finish_ms);
  }
  std::printf("\nideal all-senders finish time: N x 8.8 ms (1 MiB each at 1 Gbps).\n");
  return 0;
}
