// Figure 7: FPGA resource utilization vs. number of ports.
//
// Paper result: the 4-port DumbNet switch uses 1,713 LUTs / 1,504 registers versus
// 16,070 / 17,193 for the NetFPGA OpenFlow switch (~90% reduction); DumbNet's curve
// grows with a small quadratic demux term, staying around 30K elements at 30 ports.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/fpga/resource_model.h"

using namespace dumbnet;

int main() {
  bench::Banner("Figure 7 — FPGA resource utilization vs #ports",
                "DumbNet 4-port: 1713 LUT / 1504 FF; OpenFlow 4-port: 16070 / 17193");

  std::printf("%6s %14s %14s %14s %14s %10s\n", "ports", "DumbNet LUTs", "DumbNet FFs",
              "OpenFlow LUTs", "OpenFlow FFs", "LUT ratio");
  for (uint32_t ports = 2; ports <= 32; ports += 2) {
    FpgaResources dn = DumbNetSwitchResources(ports);
    FpgaResources of = OpenFlowSwitchResources(ports);
    std::printf("%6u %14u %14u %14u %14u %9.1f%%\n", ports, dn.luts, dn.registers,
                of.luts, of.registers,
                100.0 * static_cast<double>(dn.luts) / static_cast<double>(of.luts));
  }

  FpgaResources dn4 = DumbNetSwitchResources(4);
  FpgaResources of4 = OpenFlowSwitchResources(4);
  std::printf("\nmeasured @4 ports: DumbNet %u/%u vs OpenFlow %u/%u "
              "(paper: 1713/1504 vs 16070/17193)\n",
              dn4.luts, dn4.registers, of4.luts, of4.registers);
  std::printf("resource reduction at 4 ports: %.1f%% LUTs, %.1f%% registers "
              "(paper: ~90%%)\n",
              100.0 * (1.0 - static_cast<double>(dn4.luts) / of4.luts),
              100.0 * (1.0 - static_cast<double>(dn4.registers) / of4.registers));
  return 0;
}
