// Figure 9 (+ Section 7.2.2 aggregate throughput): single-host throughput of the
// three software pipelines, measured with google-benchmark on real buffers, plus
// the leaf-to-leaf aggregate throughput experiment on the fluid simulator.
//
// Paper result: no-op DPDK 5.41 Gbps; adding the MPLS header copy costs ~4%
// (5.19 Gbps); DumbNet's tag stack adds nothing measurable on top (5.19 Gbps).
// Aggregate: 14<->14 hosts across two leaves reach 18.5 of 20 Gbps of uplink.
//
// Our absolute Gbps is CPU-bound and differs from their NIC-bound 5.4 Gbps; the
// claim under test is the *relative* cost: noop >= mpls ~= dumbnet, with a
// few-percent encapsulation penalty.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "src/dataplane/pipeline.h"
#include "src/fluid/fluid_sim.h"
#include "src/topo/generators.h"
#include "src/util/rng.h"

namespace dumbnet {
namespace {

constexpr size_t kPayload = 1460;

// Sender side: what Figure 9's iperf sender pays per packet.
void RunTx(benchmark::State& state, PipelineMode mode, const TagList& tx_tags) {
  FramePool pool(8);
  SoftwarePipeline tx(mode, &pool);
  std::vector<uint8_t> payload(kPayload);
  std::iota(payload.begin(), payload.end(), 0);
  for (auto _ : state) {
    size_t len = 0;
    uint8_t* frame = tx.ProcessTx(payload.data(), payload.size(), tx_tags, &len);
    benchmark::DoNotOptimize(frame);
    pool.Release(frame);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPayload));
}

// Receiver side: frames arrive with transit tags already consumed by the fabric
// (ø only for DumbNet). ProcessRx mutates in place, so each iteration restores the
// frame from a template first (identical memcpy cost in every mode).
void RunRx(benchmark::State& state, PipelineMode mode) {
  FramePool pool(8);
  SoftwarePipeline pipe(mode, &pool);
  std::vector<uint8_t> payload(kPayload);
  std::iota(payload.begin(), payload.end(), 0);
  size_t len = 0;
  uint8_t* tmpl = pipe.ProcessTx(payload.data(), payload.size(), {}, &len);
  uint8_t* frame = pool.Acquire();
  for (auto _ : state) {
    std::memcpy(frame, tmpl, len);
    auto off = pipe.ProcessRx(frame, len);
    benchmark::DoNotOptimize(off);
  }
  pool.Release(frame);
  pool.Release(tmpl);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPayload));
}

void BM_Tx_NoopDpdk(benchmark::State& state) {
  RunTx(state, PipelineMode::kNoopDpdk, {});
}
BENCHMARK(BM_Tx_NoopDpdk);

void BM_Tx_MplsOnly(benchmark::State& state) {
  RunTx(state, PipelineMode::kMplsOnly, {});
}
BENCHMARK(BM_Tx_MplsOnly);

void BM_Tx_DumbNet(benchmark::State& state) {
  RunTx(state, PipelineMode::kDumbNet, TagList{2, 3, 5});
}
BENCHMARK(BM_Tx_DumbNet);

void BM_Rx_NoopDpdk(benchmark::State& state) {
  RunRx(state, PipelineMode::kNoopDpdk);
}
BENCHMARK(BM_Rx_NoopDpdk);

void BM_Rx_MplsOnly(benchmark::State& state) {
  RunRx(state, PipelineMode::kMplsOnly);
}
BENCHMARK(BM_Rx_MplsOnly);

void BM_Rx_DumbNet(benchmark::State& state) {
  RunRx(state, PipelineMode::kDumbNet);
}
BENCHMARK(BM_Rx_DumbNet);

// Aggregate throughput: 14 hosts on one leaf stream to 14 on another through
// 2 x 10 GbE uplinks; with the host agents' random spreading over the two equal
// paths the uplinks saturate (paper measures 18.5 of 20 Gbps).
void AggregateLeafThroughput() {
  LeafSpineConfig config;
  config.num_spine = 2;
  config.num_leaf = 2;
  config.hosts_per_leaf = 14;
  config.switch_ports = 32;
  auto ls = MakeLeafSpine(config);
  // Average over many random per-flow path choices (the PathTable's uniform pick):
  // each trial's imbalance leaves some uplink capacity unused, like the paper's
  // measured 18.5 of 20.
  double sum_gbps = 0;
  const int kTrials = 25;
  for (int trial = 0; trial < kTrials; ++trial) {
    Simulator sim;
    Topology topo = ls.value().topo;  // fresh copy per trial
    FluidSimulator fluid(&sim, &topo);
    Rng rng(1000u + static_cast<uint64_t>(trial));
    uint32_t leaf0 = ls.value().leaves[0];
    uint32_t leaf1 = ls.value().leaves[1];
    for (size_t i = 0; i < 14; ++i) {
      uint32_t spine = ls.value().spines[rng.PickIndex(2)];
      (void)fluid.StartFlow(ls.value().hosts[0][i], ls.value().hosts[1][i],
                            kOpenEndedBytes, {leaf0, spine, leaf1});
    }
    sim.RunUntil(Sec(1));
    for (PortNum p = 1; p <= 2; ++p) {
      LinkIndex li = topo.LinkAtPort(leaf0, p);
      const Link& l = topo.link_at(li);
      int dir = (l.a.node == NodeId::Switch(leaf0)) ? 0 : 1;
      sum_gbps += fluid.LinkUtilization(li, dir) * l.bandwidth_gbps;
    }
  }
  double wire_gbps = sum_gbps / kTrials;
  // What iperf reports is payload goodput: scale by the Ethernet framing overhead
  // (1460 payload bytes per 1538 wire bytes with preamble + IFG + headers + FCS).
  double goodput_gbps = wire_gbps * 1460.0 / 1538.0;
  std::printf("\nAggregate leaf-to-leaf throughput (Section 7.2.2):\n");
  std::printf("  14<->14 hosts over 2x10 GbE uplinks: wire %.1f Gbps, payload goodput "
              "%.1f of 20 Gbps (paper: 18.5 of 20)\n",
              wire_gbps, goodput_gbps);
}

}  // namespace
}  // namespace dumbnet

int main(int argc, char** argv) {
  std::printf("Figure 9 — single-host throughput of the software pipelines\n");
  std::printf("paper: no-op DPDK 5.41 Gbps | MPLS-only 5.19 Gbps | DumbNet 5.19 Gbps\n");
  std::printf("(compare bytes_per_second ratios; absolute rate is CPU-specific)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dumbnet::AggregateLeafThroughput();
  return 0;
}
