// Figure 8(b): topology discovery time vs. per-switch port count, holding the
// topology and link count constant.
//
// Paper result: on an 8x8x8 cube, discovery time grows quadratically with the
// per-switch port count (PM complexity is O(N * P^2)).
//
// Substitution: we sweep P on a 4x4x4 cube by default (the full 8-cube at P=96 is
// ~7.5M probe messages, minutes of wall time on one core); the quadratic trend is
// the claim under test and is size-independent. Set DUMBNET_FULL8CUBE=1 for the
// paper-size grid.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"

using namespace dumbnet;

int main() {
  bench::Banner("Figure 8(b) — discovery time vs per-switch port count (cube)",
                "quadratic trend: O(N * P^2) probe messages");
  const bool quick = bench::QuickMode();
  const bool full = std::getenv("DUMBNET_FULL8CUBE") != nullptr;
  const uint32_t n = full ? 8 : 4;

  std::printf("%8s %12s %14s %14s\n", "ports", "time (s)", "probe msgs", "t/P^2 (ms)");
  double first_ratio = -1;
  std::vector<uint32_t> sweep{8, 16, 24, 32, 48, 64};
  if (quick) {
    sweep = {8, 16, 32};
  }
  for (uint32_t ports : sweep) {
    CubeConfig config;
    config.dims = {n, n, n};
    config.hosts_per_switch = 0;
    config.switch_ports = static_cast<uint8_t>(ports);
    auto cube = MakeCube(config);
    uint32_t host = cube.value().topo.AddHost();
    (void)cube.value().topo.AttachHost(host, cube.value().At(0, 0, 0),
                                       static_cast<PortNum>(7));
    SimulatedFabric fabric(std::move(cube.value().topo));
    DiscoveryConfig discovery_config;
    discovery_config.max_ports = static_cast<uint8_t>(ports);
    DiscoveryService discovery(&fabric.agent(0), discovery_config);
    discovery.Start(nullptr);
    fabric.Run();

    double seconds = ToSec(discovery.stats().finished_at - discovery.stats().started_at);
    double per_p2 = 1e3 * seconds / static_cast<double>(ports) / static_cast<double>(ports);
    if (first_ratio < 0) {
      first_ratio = per_p2;
    }
    std::printf("%8u %12.2f %14lu %14.3f\n", ports, seconds,
                static_cast<unsigned long>(discovery.stats().probes_sent), per_p2);
  }
  std::printf("\nshape check: t/P^2 roughly constant => quadratic in P, matching the "
              "paper's O(N*P^2) analysis.\n");
  return 0;
}
