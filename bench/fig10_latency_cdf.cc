// Figure 10: round-trip latency distribution on the testbed — native Ethernet vs
// no-op DPDK vs DumbNet.
//
// Paper result: the software (DPDK) data path dominates latency; DumbNet adds
// nothing measurable over no-op DPDK. ~0.5% of packets land at 20-30 ms: the
// cold-path controller queries, issued concurrently by every pair at start.
//
// Method: all host pairs ping concurrently through the packet-level simulator.
// Per-packet host processing costs are calibrated so the native/DPDK gap matches
// the paper's; the DumbNet run starts with cold path caches so first packets pay
// the (queued) controller round trip.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/baseline/ethernet_switch.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"
#include "src/util/stats.h"

using namespace dumbnet;

namespace {

constexpr int kPingsPerPair = 100;
constexpr TimeNs kPingSpacing = Ms(20);

// Host processing cost per packet (one direction): native kernel+NIC-offload path
// vs the paper's software DPDK/KNI pipeline.
constexpr TimeNs kNativeDelay = Us(30);
constexpr TimeNs kDpdkDelay = Us(220);
// The host agent charges its delay on both send and deliver, so its per-RTT cost
// is 4x the configured value; the Ethernet ping harness charges twice per RTT.
// Halving the agent's knob equalizes the per-packet software cost.
constexpr TimeNs kDumbNetAgentDelay = kDpdkDelay / 2;

// RTTs are collected through the telemetry registry's log-bucketed histograms,
// so this CDF and a --metrics-json style telemetry report are the same numbers
// (bounded relative error ~1.6%, see LogHistogram).
void PrintCdf(const char* name, const LogHistogram& rtts) {
  std::printf("%-12s n=%5llu  p10=%6.2f  p50=%6.2f  p90=%6.2f  p99=%6.2f  "
              "p99.5=%6.2f  max=%6.2f   (ms)\n",
              name, static_cast<unsigned long long>(rtts.count()), rtts.Percentile(10),
              rtts.Percentile(50), rtts.Percentile(90), rtts.Percentile(99),
              rtts.Percentile(99.5), rtts.max());
}

// --- DumbNet ping mesh --------------------------------------------------------------

LogHistogram RunDumbNet() {
  auto tb = MakePaperTestbed();
  HostAgentConfig agent_config;
  agent_config.process_delay = kDumbNetAgentDelay;
  SimulatedFabric fabric(std::move(tb.value().topo), agent_config);
  fabric.BringUpAdopted(25);

  telemetry::HistogramMetric* rtts =
      telemetry::MetricsRegistry::Global().GetHistogram("fig10.rtt_ms.dumbnet");
  struct Pending {
    TimeNs sent;
  };
  // flow id encodes (src, dst, seq); echo replies flip is_ack.
  std::vector<std::unordered_map<uint64_t, Pending>> inflight(fabric.host_count());
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    HostAgent& agent = fabric.agent(h);
    agent.SetDataHandler([&fabric, rtts, &inflight, h](const Packet& pkt,
                                                       const DataPayload& data) {
      if (!data.is_ack) {
        DataPayload echo = data;
        echo.is_ack = true;
        (void)fabric.agent(h).Send(pkt.eth.src_mac, data.flow_id, echo);
        return;
      }
      auto it = inflight[h].find(data.flow_id);
      if (it != inflight[h].end()) {
        rtts->Record(ToMs(fabric.Now() - it->second.sent));
        inflight[h].erase(it);
      }
    });
  }
  // Everyone pings everyone, all starting at the same time (the paper's worst-case
  // concurrent-query setup), kPingsPerPair packets spaced 2 ms.
  TimeNs epoch = fabric.Now();
  uint64_t flow = 1;
  for (uint32_t src = 0; src < fabric.host_count(); ++src) {
    for (uint32_t dst = 0; dst < fabric.host_count(); ++dst) {
      if (src == dst) {
        continue;
      }
      for (int seq = 0; seq < kPingsPerPair; ++seq) {
        uint64_t id = flow++;
        fabric.sim().ScheduleAt(epoch + kPingSpacing * seq, [&fabric, &inflight, src, dst, id] {
          inflight[src][id] = {fabric.Now()};
          DataPayload ping;
          ping.flow_id = id;
          ping.bytes = 64;
          (void)fabric.agent(src).Send(fabric.agent(dst).mac(), id, ping);
        });
      }
    }
  }
  fabric.Run();
  return rtts->Snapshot();
}

// --- Ethernet ping mesh (native / no-op DPDK) ----------------------------------------

LogHistogram RunEthernet(const char* metric_name, TimeNs host_delay) {
  auto tb = MakePaperTestbed();
  Simulator sim;
  Topology topo = std::move(tb.value().topo);
  Network net(&sim, &topo);
  std::vector<std::unique_ptr<EthernetSwitch>> switches;
  for (uint32_t s = 0; s < topo.switch_count(); ++s) {
    switches.push_back(std::make_unique<EthernetSwitch>(&net, s));
  }
  std::vector<std::unique_ptr<EthernetHost>> hosts;
  for (uint32_t h = 0; h < topo.host_count(); ++h) {
    hosts.push_back(std::make_unique<EthernetHost>(&net, h));
  }
  sim.RunUntil(Sec(2));  // STP convergence + MAC learning warmup

  telemetry::HistogramMetric* rtts =
      telemetry::MetricsRegistry::Global().GetHistogram(metric_name);
  std::vector<std::unordered_map<uint64_t, TimeNs>> inflight(hosts.size());
  for (uint32_t h = 0; h < hosts.size(); ++h) {
    hosts[h]->SetFrameHandler([&, h](const Packet& pkt, const DataPayload& data) {
      if (!data.is_ack) {
        DataPayload echo = data;
        echo.is_ack = true;
        // Charge host processing on the echo turnaround.
        sim.ScheduleAfter(host_delay, [&, h, src = pkt.eth.src_mac, echo] {
          hosts[h]->SendFrame(src, echo);
        });
        return;
      }
      auto it = inflight[h].find(data.flow_id);
      if (it != inflight[h].end()) {
        rtts->Record(ToMs(sim.Now() - it->second));
        inflight[h].erase(it);
      }
    });
  }
  TimeNs epoch = sim.Now();
  uint64_t flow = 1;
  for (uint32_t src = 0; src < hosts.size(); ++src) {
    for (uint32_t dst = 0; dst < hosts.size(); ++dst) {
      if (src == dst) {
        continue;
      }
      for (int seq = 0; seq < kPingsPerPair; ++seq) {
        uint64_t id = flow++;
        sim.ScheduleAt(epoch + kPingSpacing * seq, [&, src, dst, id] {
          inflight[src][id] = sim.Now();
          DataPayload ping;
          ping.flow_id = id;
          ping.bytes = 64;
          sim.ScheduleAfter(host_delay, [&, src, dst, ping] {
            hosts[src]->SendFrame(hosts[dst]->mac(), ping);
          });
        });
      }
    }
  }
  sim.RunUntil(sim.Now() + Sec(5) + kPingSpacing * kPingsPerPair);
  return rtts->Snapshot();
}

}  // namespace

int main() {
  bench::Banner("Figure 10 — end-to-end RTT distribution (testbed, all-pairs ping)",
                "native << no-op DPDK ~= DumbNet; ~0.5% tail at 20-30 ms from "
                "concurrent cold-path controller queries");

  LogHistogram native = RunEthernet("fig10.rtt_ms.native", kNativeDelay);
  LogHistogram dpdk = RunEthernet("fig10.rtt_ms.dpdk", kDpdkDelay);
  LogHistogram dumbnet = RunDumbNet();

  PrintCdf("native", native);
  PrintCdf("no-op DPDK", dpdk);
  PrintCdf("DumbNet", dumbnet);

  double tail_fraction = 1.0 - dumbnet.FractionBelow(10.0);
  std::printf("\nDumbNet packets slower than 10 ms: %.2f%% (paper: ~0.5%% at "
              "20-30 ms)\n", 100.0 * tail_fraction);
  std::printf("DumbNet p50 / no-op DPDK p50: %.2fx (paper: ~1.0x)\n",
              dumbnet.Percentile(50) / dpdk.Percentile(50));
  return 0;
}
