// Figure 11(b): throughput across a link failure — DumbNet's host-based failover
// vs off-the-shelf Spanning Tree Protocol reconvergence.
//
// Paper result: with the network saturated at 0.5 Gbps, DumbNet recovers ~4.7x
// faster than STP: the hosts just switch to a cached backup path on the stage-1
// notification, while STP runs a distributed multi-round protocol and walks ports
// through its forward-delay stages.
//
// Method: identical topology and transport for both runs; only the fabric differs
// (dumb switches + host agents vs learning switches + STP). Throughput is sampled
// at the receiver in 10 ms bins; recovery = first bin back at >= 80% of the
// pre-failure rate.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/baseline/ethernet_switch.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"
#include "src/transport/reliable_flow.h"

using namespace dumbnet;

namespace {

constexpr TimeNs kBin = Ms(10);
constexpr TimeNs kRunFor = Sec(2);
constexpr TimeNs kCutAfter = Ms(500);

struct Timeline {
  std::vector<double> mbps;       // per bin
  TimeNs cut_at = 0;
  TimeNs recovered_at = -1;

  // First bin boundary after the cut where rate is back to >= 80% of pre-cut.
  void ComputeRecovery() {
    size_t cut_bin = static_cast<size_t>(cut_at / kBin);
    double before = 0;
    size_t n = 0;
    for (size_t i = cut_bin >= 11 ? cut_bin - 11 : 0; i + 1 < cut_bin; ++i, ++n) {
      before += mbps[i];
    }
    before /= n > 0 ? static_cast<double>(n) : 1.0;
    for (size_t i = cut_bin; i < mbps.size(); ++i) {
      if (mbps[i] >= 0.8 * before) {
        recovered_at = static_cast<TimeNs>(i + 1) * kBin - cut_at;
        return;
      }
    }
  }
};

// Makes the testbed with every link capped at 0.5 Gbps (the paper limits bandwidth
// so the link saturates).
Topology CappedTestbed(std::vector<uint32_t>* leaves) {
  LeafSpineConfig config;
  config.num_spine = 2;
  config.num_leaf = 5;
  config.hosts_per_leaf = 5;
  config.switch_ports = 64;
  config.uplink_gbps = 0.5;
  config.host_gbps = 0.5;
  auto ls = MakeLeafSpine(config);
  *leaves = ls.value().leaves;
  return std::move(ls.value().topo);
}

template <typename MakeChannelFn>
Timeline RunFlow(Simulator& sim, Topology& /*topo*/, MakeChannelFn&& channels,
                 uint64_t dst_mac, std::function<void()> cut) {
  auto [src_channel, dst_channel] = channels();
  ReliableFlowReceiver receiver(dst_channel, /*flow_id=*/1);
  FlowConfig flow;
  flow.total_bytes = 0;  // open-ended
  flow.rto = Ms(25);  // a Linux-ish minimum RTO; dominates DumbNet recovery as in the paper
  ReliableFlowSender sender(src_channel, 1, dst_mac, flow);

  Timeline timeline;
  TimeNs start = sim.Now();
  uint64_t bin_bytes = 0;
  receiver.SetProgressHook([&](uint64_t bytes) { bin_bytes += bytes; });
  std::function<void()> tick = [&] {
    timeline.mbps.push_back(static_cast<double>(bin_bytes) * 8.0 / ToSec(kBin) / 1e6);
    bin_bytes = 0;
    if (sim.Now() - start < kRunFor) {
      sim.ScheduleAfter(kBin, tick);
    }
  };
  sim.ScheduleAfter(kBin, tick);
  sim.ScheduleAfter(kCutAfter, [&] {
    timeline.cut_at = sim.Now() - start;
    cut();
  });

  sender.Start();
  sim.RunUntil(start + kRunFor + kBin);
  sender.Stop();
  timeline.ComputeRecovery();
  return timeline;
}

Timeline RunDumbNet() {
  std::vector<uint32_t> leaves;
  SimulatedFabric fabric(CappedTestbed(&leaves));
  fabric.BringUpAdopted(24);  // last host doubles as controller

  auto src_channel = std::make_unique<DumbNetChannel>(&fabric.agent(0));
  auto dst_channel = std::make_unique<DumbNetChannel>(&fabric.agent(6));  // leaf 1
  return RunFlow(
      fabric.sim(), fabric.topo(),
      [&] { return std::pair(src_channel.get(), dst_channel.get()); },
      fabric.agent(6).mac(), [&] {
        // Cut whichever uplink the flow is bound to (worst case for the sender).
        const PathTableEntry* entry =
            fabric.agent(0).path_table().Find(fabric.agent(6).mac());
        PortNum uplink = 1;
        if (entry != nullptr && !entry->paths.empty()) {
          uplink = entry->paths[0].tags[0];
          for (const auto& [flow, idx] : entry->flow_binding) {
            if (flow == 1 && idx < entry->paths.size()) {
              uplink = entry->paths[idx].tags[0];
            }
          }
        }
        fabric.topo().SetLinkUp(fabric.topo().LinkAtPort(leaves[0], uplink), false);
      });
}

Timeline RunStp() {
  std::vector<uint32_t> leaves;
  Topology topo = CappedTestbed(&leaves);
  Simulator sim;
  Network net(&sim, &topo);
  std::vector<std::unique_ptr<EthernetSwitch>> switches;
  for (uint32_t s = 0; s < topo.switch_count(); ++s) {
    switches.push_back(std::make_unique<EthernetSwitch>(&net, s));
  }
  std::vector<std::unique_ptr<EthernetHost>> hosts;
  for (uint32_t h = 0; h < topo.host_count(); ++h) {
    hosts.push_back(std::make_unique<EthernetHost>(&net, h));
  }
  sim.RunUntil(Sec(2));  // STP convergence

  auto src_channel = std::make_unique<EthernetChannel>(hosts[0].get(), &sim);
  auto dst_channel = std::make_unique<EthernetChannel>(hosts[6].get(), &sim);
  return RunFlow(
      sim, topo, [&] { return std::pair(src_channel.get(), dst_channel.get()); },
      hosts[6]->mac(), [&] {
        // Cut the leaf0 uplink on the spanning tree (the root-facing one actually
        // carrying the flow): try port 1; if that port is blocked, port 2.
        PortNum port = switches[leaves[0]]->port_state(1) ==
                               EthernetSwitch::PortState::kForwarding
                           ? 1
                           : 2;
        topo.SetLinkUp(topo.LinkAtPort(leaves[0], port), false);
      });
}

void Print(const char* name, const Timeline& t) {
  std::printf("%-8s recovery: %6.0f ms | rate around the cut (10 ms bins, Mbps):\n",
              name, t.recovered_at >= 0 ? ToMs(t.recovered_at) : -1.0);
  size_t cut_bin = static_cast<size_t>(t.cut_at / kBin);
  size_t from = cut_bin >= 3 ? cut_bin - 3 : 0;
  size_t to = std::min(t.mbps.size(), cut_bin + 40);
  std::printf("  ");
  for (size_t i = from; i < to; ++i) {
    std::printf("%s%3.0f", i == cut_bin ? " |CUT| " : " ", t.mbps[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::Banner("Figure 11(b) — post-failure throughput: DumbNet vs STP (0.5 Gbps)",
                "DumbNet recovers ~4.7x faster than STP");
  Timeline dumbnet = RunDumbNet();
  Timeline stp = RunStp();
  Print("DumbNet", dumbnet);
  Print("STP", stp);
  if (dumbnet.recovered_at > 0 && stp.recovered_at > 0) {
    std::printf("\nspeedup: STP %.0f ms / DumbNet %.0f ms = %.1fx (paper: ~4.7x)\n",
                ToMs(stp.recovered_at), ToMs(dumbnet.recovered_at),
                static_cast<double>(stp.recovered_at) /
                    static_cast<double>(dumbnet.recovered_at));
  }
  return 0;
}
