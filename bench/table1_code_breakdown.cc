// Table 1: code breakdown in different modules.
//
// The paper reports its prototype at ~7,500 lines of C/C++:
//   Agent 5000 | Disc. 600 | Maint. 200 | Graph 1700 | Total 7500 | +Flowlet 100 |
//   +Router 100
//
// This bench counts the lines of this reproduction per corresponding module so the
// two can be compared side by side (our build includes substrates the paper's
// prototype got from the OS/DPDK for free — the simulator, the Ethernet baseline —
// which are listed separately).
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace fs = std::filesystem;

namespace {

size_t CountLines(const fs::path& dir) {
  size_t lines = 0;
  if (!fs::exists(dir)) {
    return 0;
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    auto ext = entry.path().extension();
    if (ext != ".cc" && ext != ".h" && ext != ".cpp") {
      continue;
    }
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      // Count non-blank lines, as `wc -l` minus blanks; close to the paper's count.
      if (line.find_first_not_of(" \t\r") != std::string::npos) {
        ++lines;
      }
    }
  }
  return lines;
}

}  // namespace

int main() {
  dumbnet::bench::Banner(
      "Table 1 — code breakdown in different modules",
      "Agent 5000 | Disc. 600 | Maint. 200 | Graph 1700 | Total 7500 | +Flowlet 100 | "
      "+Router 100");

  const fs::path root = DUMBNET_SOURCE_DIR;
  struct Row {
    const char* label;
    std::vector<fs::path> dirs;
    int paper;
  };
  const Row rows[] = {
      {"Agent (host data path + caches)", {root / "src/host", root / "src/dataplane"}, 5000},
      {"Discovery", {root / "src/ctrl/discovery.h", root / "src/ctrl/discovery.cc"}, 600},
      {"Maintenance (controller, log)",
       {root / "src/ctrl/controller.h", root / "src/ctrl/controller.cc",
        root / "src/ctrl/replicated_log.h", root / "src/ctrl/replicated_log.cc"},
       200},
      {"Graph (routing, path graph)", {root / "src/routing"}, 1700},
      {"+Flowlet", {root / "src/ext/flowlet.h", root / "src/ext/flowlet.cc"}, 100},
      {"+Router", {root / "src/ext/l3_router.h", root / "src/ext/l3_router.cc"}, 100},
  };

  auto count_row = [](const Row& row) {
    size_t n = 0;
    for (const fs::path& p : row.dirs) {
      if (fs::is_directory(p)) {
        n += CountLines(p);
      } else if (fs::exists(p)) {
        std::ifstream in(p);
        std::string line;
        while (std::getline(in, line)) {
          if (line.find_first_not_of(" \t\r") != std::string::npos) {
            ++n;
          }
        }
      }
    }
    return n;
  };

  std::printf("%-36s %10s %10s\n", "module", "ours", "paper");
  size_t core_total = 0;
  for (const Row& row : rows) {
    size_t n = count_row(row);
    core_total += n;
    std::printf("%-36s %10zu %10d\n", row.label, n, row.paper);
  }
  std::printf("%-36s %10zu %10d\n", "Core total (paper's scope)", core_total, 7700);

  // Everything the paper's prototype leaned on its testbed for, which this
  // reproduction had to build: the simulators, switch models, workloads, benches.
  struct Extra {
    const char* label;
    fs::path dir;
  };
  const Extra extras[] = {
      {"Substrate: packet-level simulator", root / "src/net"},
      {"Substrate: event engine", root / "src/sim"},
      {"Substrate: topologies", root / "src/topo"},
      {"Substrate: dumb switch model", root / "src/switch"},
      {"Substrate: Ethernet/STP baseline", root / "src/baseline"},
      {"Substrate: transport", root / "src/transport"},
      {"Substrate: fluid simulator", root / "src/fluid"},
      {"Substrate: workloads", root / "src/workload"},
      {"Substrate: FPGA model", root / "src/fpga"},
      {"Substrate: virtualization ext", root / "src/ext/virtualization.h"},
      {"Substrate: util", root / "src/util"},
      {"Assembly (core)", root / "src/core"},
      {"Tests", root / "tests"},
      {"Benches", root / "bench"},
      {"Examples", root / "examples"},
  };
  size_t grand = core_total;
  std::printf("\n%-36s %10s\n", "reproduction-only code", "lines");
  for (const Extra& extra : extras) {
    size_t n;
    if (fs::is_directory(extra.dir)) {
      n = CountLines(extra.dir);
    } else {
      Row tmp{"", {extra.dir, fs::path(extra.dir).replace_extension(".cc")}, 0};
      n = count_row(tmp);
    }
    grand += n;
    std::printf("%-36s %10zu\n", extra.label, n);
  }
  std::printf("%-36s %10zu\n", "Repository total", grand);
  return 0;
}
