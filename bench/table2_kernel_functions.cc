// Table 2: latency of the host kernel-module functions, measured with
// google-benchmark on real data structures.
//
// Paper setup and result (on their hardware):
//   fat-tree with 5,120 switches and 131,072 links (k = 64), 10K PathTable entries,
//   verified path length 16:
//     PathTable lookup: 0.37 us | Path verify: 7.17 us | Find path: 1.50 us
//
// We reproduce the ordering (lookup < find-path < verify) and the microsecond
// scale; absolute numbers depend on the CPU.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/host/path_table.h"
#include "src/host/path_verifier.h"
#include "src/host/topo_cache.h"
#include "src/routing/graph.h"
#include "src/routing/path_graph.h"
#include "src/routing/shortest_path.h"
#include "src/topo/generators.h"
#include "src/util/rng.h"

namespace dumbnet {
namespace {

// Shared fixture state: the k=64 fat-tree mirrored into a TopoDb (5,120 switches,
// 131,072 inter-switch links), built once.
struct BigFabric {
  BigFabric() {
    FatTreeConfig config;
    config.k = 64;
    config.attach_hosts = false;
    auto ft = MakeFatTree(config);
    topo = std::make_unique<Topology>(std::move(ft.value().topo));
    edge0 = ft.value().edge.front();
    edge_far = ft.value().edge.back();
    for (LinkIndex li = 0; li < topo->link_count(); ++li) {
      const Link& l = topo->link_at(li);
      (void)db.AddLink(WireLink{topo->switch_at(l.a.node.index).uid, l.a.port,
                                topo->switch_at(l.b.node.index).uid, l.b.port});
    }
    // A loop-free 16-switch walk for the verify benchmark (paper: "the path length
    // we verify is 16, longer than most DCN paths").
    SwitchGraph graph(*topo);
    std::vector<bool> used(topo->switch_count(), false);
    GrowWalk(graph, edge0, used, 16);
    for (uint32_t idx : walk) {
      walk_uids.push_back(topo->switch_at(idx).uid);
    }
  }

  bool GrowWalk(const SwitchGraph& graph, uint32_t v, std::vector<bool>& used,
                size_t target) {
    used[v] = true;
    walk.push_back(v);
    if (walk.size() == target) {
      return true;
    }
    for (const AdjEdge& e : graph.Neighbors(v)) {
      if (!used[e.to] && GrowWalk(graph, e.to, used, target)) {
        return true;
      }
    }
    used[v] = false;
    walk.pop_back();
    return false;
  }

  std::unique_ptr<Topology> topo;
  TopoDb db;
  uint32_t edge0 = 0;
  uint32_t edge_far = 0;
  std::vector<uint32_t> walk;
  std::vector<uint64_t> walk_uids;
};

BigFabric& Fabric() {
  static BigFabric fabric;
  return fabric;
}

PathTable& BigTable() {
  static PathTable* table = [] {
    auto* t = new PathTable(1);
    Rng rng(42);
    for (int i = 0; i < 10000; ++i) {
      uint64_t mac = uint64_t{0x020000000000} + static_cast<uint64_t>(i);
      PathTableEntry entry;
      entry.dst = HostLocation{mac, rng.Next64(), 1};
      for (int p = 0; p < 4; ++p) {
        CachedRoute route;
        for (int h = 0; h < 5; ++h) {
          route.uid_path.push_back(rng.Next64());
          route.tags.push_back(static_cast<PortNum>(1 + rng.UniformInt(64)));
        }
        entry.paths.push_back(std::move(route));
      }
      t->Install(mac, std::move(entry));
    }
    return t;
  }();
  return *table;
}

// PathTable lookup with 10K entries installed (paper: "we inserted 10K random
// entries into the Table"): the raw per-destination cache probe.
void BM_PathTableLookup(benchmark::State& state) {
  PathTable& table = BigTable();
  size_t i = 0;
  for (auto _ : state) {
    const PathTableEntry* entry = table.Find(0x020000000000ULL + i);
    benchmark::DoNotOptimize(entry);
    i = (i + 677) % 10000;
  }
}
BENCHMARK(BM_PathTableLookup);

// Find path: resolve (destination, flow) to a concrete route — binding check,
// equal-cost choice, rebind bookkeeping (what every packet send runs).
void BM_FindPath(benchmark::State& state) {
  PathTable& table = BigTable();
  uint64_t flow = 0;
  size_t i = 0;
  for (auto _ : state) {
    auto route = table.RouteFor(0x020000000000ULL + i, flow);
    benchmark::DoNotOptimize(route);
    i = (i + 677) % 10000;
    flow = (flow + 1) % 64;  // a host tracks a bounded set of live flows
  }
}
BENCHMARK(BM_FindPath);

// Path verification: walk a 16-switch path through the full 5,120-switch topology
// checking adjacency, link state, loops and policy.
void BM_PathVerify16(benchmark::State& state) {
  BigFabric& fabric = Fabric();
  PathVerifier verifier(&fabric.db, VerifyPolicy{});
  for (auto _ : state) {
    Status s = verifier.VerifyUidPath(fabric.walk_uids);
    benchmark::DoNotOptimize(s);
  }
  if (!verifier.VerifyUidPath(fabric.walk_uids).ok()) {
    state.SkipWithError("verification unexpectedly failed");
  }
}
BENCHMARK(BM_PathVerify16);

// Extra (not a Table 2 row): full path computation over the cached subgraph on a
// PathTable miss — the TopoCache slow path.
void BM_ComputeRoutesOnMiss(benchmark::State& state) {
  BigFabric& fabric = Fabric();
  // Controller-side: build the path graph once; host-side: merge it into a cache.
  SwitchGraph graph(*fabric.topo);
  auto pg = BuildPathGraph(*fabric.topo, graph, fabric.edge0, fabric.edge_far,
                           PathGraphParams{});
  WirePathGraph wire;
  wire.src_uid = fabric.topo->switch_at(fabric.edge0).uid;
  wire.dst_uid = fabric.topo->switch_at(fabric.edge_far).uid;
  for (LinkIndex li : pg.value().links) {
    const Link& l = fabric.topo->link_at(li);
    wire.links.push_back(WireLink{fabric.topo->switch_at(l.a.node.index).uid, l.a.port,
                                  fabric.topo->switch_at(l.b.node.index).uid, l.b.port});
  }
  TopoCache cache;
  (void)cache.Integrate(wire, HostLocation{0xBEEF, wire.dst_uid, 1});

  auto src_idx = cache.db().IndexOf(wire.src_uid).value();
  auto dst_idx = cache.db().IndexOf(wire.dst_uid).value();
  SwitchGraph sub(cache.db().mirror());
  for (auto _ : state) {
    auto path = ShortestPath(sub, src_idx, dst_idx);
    benchmark::DoNotOptimize(path);
  }
  state.counters["cached_switches"] =
      static_cast<double>(cache.db().switch_count());
}
BENCHMARK(BM_ComputeRoutesOnMiss);

}  // namespace
}  // namespace dumbnet

int main(int argc, char** argv) {
  std::printf("Table 2 — kernel module function latency\n");
  std::printf("paper: PathTable lookup 0.37 us | path verify (len 16) 7.17 us | "
              "find path 1.50 us\n");
  std::printf("mapping: lookup=PathTable::Find | find path=PathTable::RouteFor | "
              "verify=PathVerifier (16 switches)\n");
  std::printf("(fat-tree k=64: 5,120 switches / 131,072 links; 10K PathTable entries)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
