// Figure 13: HiBench job durations on the testbed under three routing policies.
//
// Paper result: full DumbNet (with flowlet TE) finishes every job fastest;
// conventional networking ("no-op DPDK", i.e. per-flow ECMP) is second; DumbNet
// restricted to a single path per host pair is clearly worst. Gaps are biggest for
// shuffle-heavy jobs (Terasort, Aggregation) and small for Wordcount.
//
// Method: the five workloads are flow-DAG models (map/shuffle/reduce barriers with
// HiBench-like volumes) executed on the fluid max-min simulator over the testbed
// topology with spine ports capped at 500 Mbps, exactly the paper's setup. All
// three policies route with the same k-shortest-path library the host agents use.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/fluid/fluid_sim.h"
#include "src/topo/generators.h"
#include "src/workload/hibench.h"
#include "src/workload/job_runner.h"

using namespace dumbnet;

namespace {

Topology CappedTestbed(std::vector<uint32_t>* workload_hosts) {
  LeafSpineConfig config;
  config.num_spine = 2;
  config.num_leaf = 5;
  config.hosts_per_leaf = 5;
  config.switch_ports = 64;
  config.uplink_gbps = 0.5;  // paper: "we limit spine switch port speed to 500 Mbps"
  config.host_gbps = 10.0;
  auto ls = MakeLeafSpine(config);
  workload_hosts->clear();
  for (const auto& leaf_hosts : ls.value().hosts) {
    for (uint32_t h : leaf_hosts) {
      workload_hosts->push_back(h);
    }
  }
  return std::move(ls.value().topo);
}

enum class Policy { kDumbNetTe, kNoopDpdk, kSinglePath };

TimeNs RunJob(HiBenchWorkload workload, Policy policy) {
  std::vector<uint32_t> hosts;
  Topology topo = CappedTestbed(&hosts);
  Simulator sim;
  FluidSimulator fluid(&sim, &topo);

  PathPolicy path_policy;
  JobRunnerConfig runner_config;
  switch (policy) {
    case Policy::kDumbNetTe:
      path_policy = MakeFlowletPolicy(&topo, 4, 17);
      runner_config.flowlet_interval = Ms(250);
      break;
    case Policy::kNoopDpdk:
      path_policy = MakeEcmpPolicy(&topo, 4, 17);
      break;
    case Policy::kSinglePath:
      path_policy = MakeSinglePathPolicy(&topo, 17);
      break;
  }

  Rng rng(1234);  // same DAG for every policy
  HiBenchScale scale;
  scale.unit_bytes = bench::QuickMode() ? 2e6 : 80e6;
  scale.compute_scale = 1.0;
  HiBenchJob job = MakeHiBenchJob(workload, hosts, rng, scale);

  FluidJobRunner runner(&sim, &topo, &fluid, std::move(path_policy), runner_config);
  TimeNs duration = 0;
  runner.RunJob(job, [&](const JobResult& result) { duration = result.duration; });
  sim.Run();
  return duration;
}

}  // namespace

int main() {
  bench::Banner("Figure 13 — HiBench job durations (testbed, 500 Mbps spine ports)",
                "DumbNet (flowlet TE) < no-op DPDK (ECMP) < DumbNet single path, "
                "per workload");

  std::printf("%-14s %14s %14s %18s %10s %12s\n", "workload", "DumbNet (s)",
              "no-op DPDK (s)", "DumbNet 1-path (s)", "TE gain", "1-path loss");
  for (HiBenchWorkload workload : AllHiBenchWorkloads()) {
    TimeNs te = RunJob(workload, Policy::kDumbNetTe);
    TimeNs ecmp = RunJob(workload, Policy::kNoopDpdk);
    TimeNs single = RunJob(workload, Policy::kSinglePath);
    std::printf("%-14s %14.1f %14.1f %18.1f %9.2fx %11.2fx\n",
                HiBenchWorkloadName(workload), ToSec(te), ToSec(ecmp), ToSec(single),
                static_cast<double>(ecmp) / static_cast<double>(te),
                static_cast<double>(single) / static_cast<double>(te));
  }
  std::printf("\nshape check: TE gain > 1 everywhere, largest for shuffle-heavy jobs;\n"
              "single-path is the slowest configuration for every workload.\n");
  return 0;
}
