// Churn audit bench: failover-latency CDF under an adversarial flapping
// schedule (src/chaos), plus the packets blackholed into dead or gray links
// while the control plane catches up.
//
// No direct paper figure — this is the adversarial companion to Figure 11's
// single-cut failover: instead of one clean link cut, links flap with
// exponential dwell times, one link turns gray (lossy), and one switch takes a
// correlated outage. The latency measured is virtual time from a link-down
// event's origin to each host learning about it (the window in which that host
// can still bind new flows onto a dead path).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/chaos/chaos.h"
#include "src/core/fabric.h"
#include "src/topo/generators.h"
#include "src/util/rng.h"

using namespace dumbnet;

namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::Banner("Churn audit — failover-latency CDF under flapping links",
                "adversarial companion to Figure 11 (no single paper number)");

  auto tb = MakePaperTestbed();
  SimulatedFabric fabric(std::move(tb.value().topo), HostAgentConfig(),
                         DumbSwitchConfig(), NetworkConfig(), /*shards=*/1);

  std::vector<double> latency_us;
  for (uint32_t h = 0; h < static_cast<uint32_t>(fabric.host_count()); ++h) {
    HostAgent* agent = &fabric.agent(h);
    agent->SetLinkEventHook([agent, &latency_us](const LinkEventPayload& ev,
                                                 bool /*from_fabric*/) {
      if (!ev.up) {
        latency_us.push_back(static_cast<double>(agent->sim().Now() - ev.origin_time) /
                             1000.0);
      }
    });
  }
  fabric.BringUpAdopted(25);

  chaos::ChaosConfig config;
  config.seed = 1;
  config.horizon = args.quick ? Ms(60) : Ms(200);
  config.flap.links = 3;
  config.gray.links = 1;
  config.outage.enabled = true;
  chaos::ChaosSchedule sched = chaos::GenerateSchedule(fabric.topo(), config);

  const uint64_t blackholed_before =
      fabric.net().stats().dropped_link_down + fabric.net().stats().dropped_gray;

  // Two fresh flows at every churn boundary keep the data plane exposed to the
  // current failure pattern (same idiom as dumbnet-fuzz).
  Rng traffic(config.seed);
  uint64_t flow = 1;
  chaos::RunHooks hooks;
  hooks.on_boundary = [&](TimeNs) {
    const uint32_t hosts = static_cast<uint32_t>(fabric.host_count());
    for (int i = 0; i < 2; ++i) {
      const uint32_t src = static_cast<uint32_t>(traffic.UniformInt(hosts));
      uint32_t dst = static_cast<uint32_t>(traffic.UniformInt(hosts - 1));
      if (dst >= src) {
        ++dst;
      }
      (void)fabric.agent(src).Send(fabric.agent(dst).mac(), flow++, DataPayload{});
    }
  };
  chaos::RunSchedule(fabric, sched, hooks);

  const uint64_t blackholed = fabric.net().stats().dropped_link_down +
                              fabric.net().stats().dropped_gray - blackholed_before;

  std::sort(latency_us.begin(), latency_us.end());
  const double p50 = Percentile(latency_us, 0.50);
  const double p90 = Percentile(latency_us, 0.90);
  const double p99 = Percentile(latency_us, 0.99);
  const double max = latency_us.empty() ? 0.0 : latency_us.back();

  std::printf("schedule: %zu actions over %lld ms (%zu links touched)\n",
              sched.actions.size(),
              static_cast<long long>(config.horizon / Ms(1)),
              sched.TouchedLinks().size());
  std::printf("failover notifications observed: %zu (host x down-event pairs)\n",
              latency_us.size());
  std::printf("latency CDF: p50 %.1f us | p90 %.1f us | p99 %.1f us | max %.1f us\n",
              p50, p90, p99, max);
  std::printf("packets blackholed into dead/gray links: %llu\n",
              static_cast<unsigned long long>(blackholed));

  bench::JsonReporter report;
  bench::JsonReporter::Params params = {
      {"horizon_ms", std::to_string(config.horizon / Ms(1))},
      {"flap_links", std::to_string(config.flap.links)}};
  report.Add("churn_failover", "failover_p50", p50, "us", params);
  report.Add("churn_failover", "failover_p99", p99, "us", params);
  report.Add("churn_failover", "notifications", static_cast<double>(latency_us.size()),
             "count", params);
  report.WriteTo(args.json_path);
  bench::WriteMetricsJson(args.metrics_path);
  return 0;
}
