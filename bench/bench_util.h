// Shared helpers for the reproduction benches: consistent headers, an
// environment switch (DUMBNET_QUICK=1) that shrinks the slowest sweeps, and a
// machine-readable JSON reporter (--json <path>) whose rows dumbnet-check can
// gate against a committed baseline.
#ifndef DUMBNET_BENCH_BENCH_UTIL_H_
#define DUMBNET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/telemetry/telemetry.h"

namespace dumbnet {
namespace bench {

inline bool QuickMode() {
  const char* env = std::getenv("DUMBNET_QUICK");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

inline void Banner(const char* id, const char* paper_result) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", id);
  std::printf("paper: %s\n", paper_result);
  std::printf("==============================================================================\n");
}

// Command-line switches every bench understands.
struct BenchArgs {
  bool quick = false;         // --quick (equivalent to DUMBNET_QUICK=1)
  std::string json_path;      // --json <path>: write a JSON report on exit
  std::string metrics_path;   // --metrics-json <path>: dump the telemetry registry
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  args.quick = QuickMode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      args.metrics_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>] [--metrics-json <path>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

// Dumps the telemetry metrics registry as JSON; call at bench exit when
// --metrics-json was given. A no-op for an empty path.
inline void WriteMetricsJson(const std::string& path) {
  if (path.empty()) {
    return;
  }
  if (!telemetry::MetricsRegistry::Global().WriteJsonFile(path)) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::printf("wrote telemetry metrics to %s\n", path.c_str());
}

// Accumulates measurement rows and writes them as a JSON array of
//   {"bench": ..., "metric": ..., "value": ..., "unit": ..., "params": {...}}
// objects. Units are meaningful to dumbnet-check's regression gate: time-like
// units ("ns", "us", "ms", "s") are lower-is-better, everything else
// (rates, ratios, counts) higher-is-better.
class JsonReporter {
 public:
  using Params = std::vector<std::pair<std::string, std::string>>;

  void Add(const std::string& bench, const std::string& metric, double value,
           const std::string& unit, const Params& params = {}) {
    Row row;
    row.bench = bench;
    row.metric = metric;
    row.value = value;
    row.unit = unit;
    row.params = params;
    rows_.push_back(std::move(row));
  }

  // Writes the report; returns false (with a message on stderr) on I/O failure.
  // A no-op when `path` is empty.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) {
      return true;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "  {\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", \"params\": {",
                   r.bench.c_str(), r.metric.c_str(), r.value, r.unit.c_str());
      for (size_t j = 0; j < r.params.size(); ++j) {
        std::fprintf(f, "%s\"%s\": \"%s\"", j == 0 ? "" : ", ",
                     r.params[j].first.c_str(), r.params[j].second.c_str());
      }
      std::fprintf(f, "}}%s\n", i + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %zu rows to %s\n", rows_.size(), path.c_str());
    return true;
  }

  size_t size() const { return rows_.size(); }

 private:
  struct Row {
    std::string bench;
    std::string metric;
    double value = 0.0;
    std::string unit;
    Params params;
  };

  std::vector<Row> rows_;
};

}  // namespace bench
}  // namespace dumbnet

#endif  // DUMBNET_BENCH_BENCH_UTIL_H_
