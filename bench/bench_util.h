// Shared helpers for the reproduction benches: consistent headers and an
// environment switch (DUMBNET_QUICK=1) that shrinks the slowest sweeps.
#ifndef DUMBNET_BENCH_BENCH_UTIL_H_
#define DUMBNET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dumbnet {
namespace bench {

inline bool QuickMode() {
  const char* env = std::getenv("DUMBNET_QUICK");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

inline void Banner(const char* id, const char* paper_result) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", id);
  std::printf("paper: %s\n", paper_result);
  std::printf("==============================================================================\n");
}

}  // namespace bench
}  // namespace dumbnet

#endif  // DUMBNET_BENCH_BENCH_UTIL_H_
