// wire_latency: wall-clock cost of the deployment runtime (src/wire).
//
// Unlike every other bench in this directory, nothing here is simulated time:
// a real 3-switch fabric is booted as threads + Unix sockets, and the numbers
// are CLOCK_MONOTONIC wall time as a host application would experience them.
//
// Two measurements:
//   * per-hop forwarding cost — echo RTTs along explicitly pinned tag paths of
//     1, 2, and 3 switch hops between the same pair of endpoints where
//     possible. The 2-hop and 3-hop paths share src, dst, and return route, so
//     their p50 difference isolates the wall-clock cost of one extra software
//     switch traversal (frame decode + tag forward + frame encode + socket).
//   * failover latency — a live inter-switch link carrying a warmed flow is
//     killed, and the gap until the host's repair restores delivery is timed
//     with a tight 20 ms-timeout ping loop. Repeated over several rounds with
//     the link revived in between.
//
// Flags: --quick (fewer samples), --json <path> (measurement rows),
// --metrics-json <path> (telemetry registry dump: wire.oneway_ns,
// wire.bench.rtt_h*_ns, wire.failover_ns).

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/contracts.h"
#include "src/telemetry/telemetry.h"
#include "src/topo/topology.h"
#include "src/util/logging.h"
#include "src/util/stats.h"
#include "src/wire/clock.h"
#include "src/wire/runtime.h"

namespace dumbnet {
namespace {

using wire::MonotonicNowNs;
using wire::PingOutcome;
using wire::SleepNs;
using wire::WireFabric;
using wire::WireFabricOptions;

// Same triangle as dumbnet-net's testbed: 3 switches, 2 hosts each, every
// inter-switch pair directly linked so a 3-hop detour always exists.
Topology MakeTriangle() {
  Topology topo;
  const uint32_t s0 = topo.AddSwitch(8);
  const uint32_t s1 = topo.AddSwitch(8);
  const uint32_t s2 = topo.AddSwitch(8);
  (void)topo.ConnectSwitches(s0, 1, s1, 1);
  (void)topo.ConnectSwitches(s1, 2, s2, 1);
  (void)topo.ConnectSwitches(s2, 2, s0, 2);
  for (uint32_t sw : {s0, s1, s2}) {
    for (PortNum port = 3; port <= 4; ++port) {
      (void)topo.AttachHost(topo.AddHost(), sw, port);
    }
  }
  return topo;
}

struct PinnedPath {
  const char* name;
  int hops;
  uint32_t src;
  uint32_t dst;
  std::vector<uint64_t> uids;  // explicit switch route for SendOnPath
};

LogHistogram MeasureRtts(WireFabric& fabric, const PinnedPath& path,
                         int warmup, int samples, uint64_t* flow) {
  LogHistogram rtts;
  // DN_HISTOGRAM_RECORD caches its metric by call site, so the per-hop-count
  // registry histograms are looked up directly.
  telemetry::HistogramMetric* metric =
      telemetry::MetricsRegistry::Global().GetHistogram(
          std::string("wire.bench.rtt_h") + std::to_string(path.hops) + "_ns");
  for (int i = 0; i < warmup + samples; ++i) {
    // Warmup pings go unpinned: the controller's path responses (route +
    // detour subgraph) are what teach the host the switch UIDs that
    // SendOnPath later compiles into tags.
    const PingOutcome out =
        i < warmup
            ? fabric.Ping(path.src, path.dst, (*flow)++, Sec(2))
            : fabric.Ping(path.src, path.dst, (*flow)++, Sec(2), path.uids);
    if (!out.ok) {
      if (!out.error.empty()) {
        std::fprintf(stderr, "wire_latency: ping %s: %s\n", path.name,
                     out.error.c_str());
      }
      continue;  // a lost ping under load; the histogram just loses a sample
    }
    if (i >= warmup) {
      rtts.Add(static_cast<double>(out.rtt_ns));
      metric->Record(static_cast<double>(out.rtt_ns));
    }
  }
  return rtts;
}

}  // namespace
}  // namespace dumbnet

int main(int argc, char** argv) {
  using namespace dumbnet;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::Banner("wire_latency: wall-clock per-hop + failover cost of the wire runtime",
                "deployment runtime (no paper figure; real sockets, real clock)");

  telemetry::SetEnabled(true);
  // Live-fire the hot-path contract checker across the whole run: node threads
  // execute the annotated reactor loop, frame decoder, PathTable lookup and
  // rank-annotated locks for real. CI gates this bench's metrics JSON on
  // contracts.hot_allocs == 0 and contracts.rank_inversions == 0.
  contracts::SetEnabled(true);
  if (std::getenv("DUMBNET_WIRE_DEBUG") != nullptr) {
    SetLogLevel(LogLevel::kDebug);
  }

  Topology topo = MakeTriangle();
  WireFabricOptions fopts;
  fopts.node.disc_config.max_ports = 8;
  fopts.node.disc_config.probe_timeout = Ms(50);
  fopts.discovery_timeout = Sec(10);
  WireFabric fabric(topo, fopts);
  Status status = fabric.Start();
  if (status.ok()) {
    status = fabric.RunDiscovery();
  }
  if (!status.ok()) {
    std::fprintf(stderr, "wire_latency: fabric bring-up failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  const int samples = args.quick ? 40 : 200;
  const int warmup = 5;
  const int failover_rounds = args.quick ? 2 : 5;
  uint64_t flow = 1;

  // Host layout: h0,h1 on S0; h2,h3 on S1; h4,h5 on S2. The 2- and 3-hop
  // paths share endpoints (h0 -> h4), so only the pinned forward route differs.
  const uint64_t uid0 = topo.switch_at(0).uid;
  const uint64_t uid1 = topo.switch_at(1).uid;
  const uint64_t uid2 = topo.switch_at(2).uid;
  const std::vector<PinnedPath> paths = {
      {"h1_same_switch", 1, 0, 1, {uid0}},
      {"h2_direct", 2, 0, 4, {uid0, uid2}},
      {"h3_detour", 3, 0, 4, {uid0, uid1, uid2}},
  };

  bench::JsonReporter report;
  double p50_by_hops[4] = {0, 0, 0, 0};
  for (const PinnedPath& path : paths) {
    LogHistogram rtts = MeasureRtts(fabric, path, warmup, samples, &flow);
    if (rtts.count() == 0) {
      std::fprintf(stderr, "wire_latency: no successful pings on %s\n",
                   path.name);
      return 1;
    }
    p50_by_hops[path.hops] = rtts.Percentile(50);
    std::printf("%-16s %d hops  rtt p50 %8.1f us  p90 %8.1f us  p99 %8.1f us  (%zu ok)\n",
                path.name, path.hops, rtts.Percentile(50) / 1e3,
                rtts.Percentile(90) / 1e3, rtts.Percentile(99) / 1e3,
                rtts.count());
    const bench::JsonReporter::Params params = {
        {"hops", std::to_string(path.hops)}, {"path", path.name}};
    report.Add("wire_latency", "rtt_p50", rtts.Percentile(50), "ns", params);
    report.Add("wire_latency", "rtt_p90", rtts.Percentile(90), "ns", params);
    report.Add("wire_latency", "rtt_p99", rtts.Percentile(99), "ns", params);
  }

  // Same endpoints, one extra pinned switch traversal: the per-hop cost.
  const double per_hop_ns = p50_by_hops[3] - p50_by_hops[2];
  std::printf("per-hop forwarding cost (3-hop p50 - 2-hop p50): %.1f us\n",
              per_hop_ns / 1e3);
  report.Add("wire_latency", "per_hop_p50", per_hop_ns, "ns");

  // --- Failover ---------------------------------------------------------------
  // Flow h0 -> h2 initially rides the S0<->S1 link (the unique shortest
  // route). Each round kills whichever of S0's two uplinks the previous repair
  // moved the traffic onto, so every kill severs the active route. The first
  // kill waits out the switches' 1 s alarm-suppression window (opened by the
  // bring-up port-up alarms), else the deferred alarm masquerades as ~900 ms
  // of failover latency.
  const LinkIndex victims[2] = {topo.LinkAtPort(0, 1), topo.LinkAtPort(0, 2)};
  LogHistogram gaps;
  SleepNs(Ms(1200));
  for (int round = 0; round < failover_rounds; ++round) {
    const LinkIndex victim = victims[round % 2];
    const uint64_t drill_flow = flow++;
    bool warmed = false;
    for (int i = 0; i < 5 && !warmed; ++i) {
      warmed = fabric.Ping(0, 2, drill_flow, Sec(2)).ok;
    }
    if (!warmed) {
      std::fprintf(stderr, "wire_latency: warmup failed in round %d\n", round);
      return 1;
    }
    const int64_t killed_at = MonotonicNowNs();
    fabric.KillLink(victim);
    const int64_t deadline = killed_at + Sec(15);
    int64_t gap = -1;
    int failures = 0;
    while (MonotonicNowNs() < deadline) {
      if (fabric.Ping(0, 2, drill_flow, Ms(20)).ok) {
        gap = MonotonicNowNs() - killed_at;
        break;
      }
      ++failures;
    }
    if (gap < 0) {
      std::fprintf(stderr, "wire_latency: no recovery in round %d\n", round);
      return 1;
    }
    if (failures == 0) {
      // The route never crossed the victim; nothing was measured this round.
      std::printf("failover round %d: flow unaffected by kill, skipped\n", round);
    } else {
      gaps.Add(static_cast<double>(gap));
      DN_HISTOGRAM_RECORD("wire.failover_ns", static_cast<double>(gap));
      std::printf("failover round %d: recovered in %.2f ms\n", round,
                  static_cast<double>(gap) / 1e6);
    }
    fabric.ReviveLink(victim);
    // Let the link re-handshake, the controller's patch flood settle, and the
    // switches' alarm-suppression window (1 s) expire, so the next round's
    // fresh flow is routed across the victim again and its kill is announced.
    SleepNs(Ms(1500));
  }
  if (gaps.count() > 0) {
    std::printf("failover latency: p50 %.2f ms  max %.2f ms  (%zu rounds)\n",
                gaps.Percentile(50) / 1e6, gaps.max() / 1e6, gaps.count());
    report.Add("wire_latency", "failover_p50", gaps.Percentile(50), "ns");
    report.Add("wire_latency", "failover_max", gaps.max(), "ns");
  }

  fabric.Shutdown();
  contracts::SetEnabled(false);
  const contracts::CounterSnapshot contract_counts = contracts::Counters();
  std::printf("contracts: hot_allocs=%llu rank_inversions=%llu reactor_blocks=%llu%s\n",
              static_cast<unsigned long long>(contract_counts.hot_allocs),
              static_cast<unsigned long long>(contract_counts.rank_inversions),
              static_cast<unsigned long long>(contract_counts.reactor_blocks),
              contracts::kCompiledIn ? "" : " (COMPILED OUT)");
  if (contract_counts.hot_allocs != 0 || contract_counts.rank_inversions != 0) {
    std::printf("  last violation: %s\n", contracts::LastViolationMessage());
  }
  contracts::PublishTelemetry();
  report.WriteTo(args.json_path);
  bench::WriteMetricsJson(args.metrics_path);
  return 0;
}
